(* Tests for the exact solvers (Optimal.mla/bla/mnu) against brute-force
   enumeration on tiny instances, plus the Appendix A/B/C NP-hardness
   constructions cross-checked against the dedicated combinatorial solvers
   (subset-sum DP, exact makespan, exact set cover). *)

open Wlan_model
open Mcast_core

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let fig1_mnu = Examples.fig1 ~session_rate_mbps:3.
let fig1_1m = Examples.fig1 ~session_rate_mbps:1.

(* ------------------------------------------------------------------ *)
(* Figure 1 optima (stated in §3.2 of the paper)                      *)
(* ------------------------------------------------------------------ *)

let test_optimal_mnu_fig1 () =
  (* at 3 Mbps the optimum serves 4 users (u2,u4,u5 on a1, u3 on a2) *)
  let v = Option.get (Optimal.mnu fig1_mnu) in
  Alcotest.(check int) "4 users" 4 v.Optimal.value;
  Alcotest.(check bool) "proved" true v.Optimal.proved_optimal;
  Alcotest.(check bool) "budget ok" true
    (Solution.respects_budget fig1_mnu v.Optimal.solution)

let test_optimal_bla_fig1 () =
  (* at 1 Mbps the optimal maximum load is 1/2 *)
  let v = Option.get (Optimal.bla fig1_1m) in
  check_float "max load 1/2" 0.5 v.Optimal.value;
  Alcotest.(check int) "serves all" 5 v.Optimal.solution.Solution.satisfied

let test_optimal_mla_fig1 () =
  (* at 1 Mbps the optimal total load is 7/12 *)
  let v = Option.get (Optimal.mla fig1_1m) in
  check_float "total 7/12" (7. /. 12.) v.Optimal.value;
  Alcotest.(check int) "serves all" 5 v.Optimal.solution.Solution.satisfied

(* ------------------------------------------------------------------ *)
(* Brute force on fig1 agrees                                         *)
(* ------------------------------------------------------------------ *)

let test_brute_force_fig1 () =
  let b = Option.get (Optimal.brute_force ~objective:Max_served fig1_mnu) in
  Alcotest.(check int) "max served 4" 4 b.Solution.satisfied;
  let b = Option.get (Optimal.brute_force ~objective:Min_max_load fig1_1m) in
  check_float "min max 1/2" 0.5 b.Solution.max_load;
  let b = Option.get (Optimal.brute_force ~objective:Min_total_load fig1_1m) in
  check_float "min total 7/12" (7. /. 12.) b.Solution.total_load

(* ------------------------------------------------------------------ *)
(* Exact = brute force on random tiny instances                       *)
(* ------------------------------------------------------------------ *)

let gen_tiny =
  QCheck.Gen.(
    let* n_aps = int_range 1 3 in
    let* n_users = int_range 1 6 in
    let* n_sessions = int_range 1 3 in
    let* seed = int_range 0 1_000_000 in
    let* budget = float_range 0.05 0.9 in
    let p =
      List.hd
        (Scenario_gen.problems ~seed ~n:1
           {
             Scenario_gen.paper_default with
             area_w = 350.;
             area_h = 350.;
             n_aps;
             n_users;
             n_sessions;
             ensure_coverage = true;
           })
    in
    return (Problem.with_budget p budget))

let arb_tiny = QCheck.make gen_tiny

let prop_mla_exact_matches_brute =
  QCheck.Test.make ~name:"exact MLA = brute force" ~count:60 arb_tiny (fun p ->
      let e = Option.get (Optimal.mla p) in
      let b = Option.get (Optimal.brute_force ~objective:Min_total_load p) in
      feq e.Optimal.value b.Solution.total_load)

let prop_bla_exact_matches_brute =
  QCheck.Test.make ~name:"exact BLA = brute force" ~count:40 arb_tiny (fun p ->
      let e = Option.get (Optimal.bla p) in
      let b = Option.get (Optimal.brute_force ~objective:Min_max_load p) in
      feq e.Optimal.value b.Solution.max_load)

let prop_mnu_exact_matches_brute =
  QCheck.Test.make ~name:"exact MNU = brute force" ~count:40 arb_tiny (fun p ->
      match (Optimal.mnu p, Optimal.brute_force ~objective:Max_served p) with
      | Some e, Some b -> e.Optimal.value = b.Solution.satisfied
      | None, Some b ->
          (* no transmission fits the budget: optimum serves nobody *)
          b.Solution.satisfied = 0
      | _, None -> false)

(* the LP/ILP stack and the combinatorial branch-and-bound must agree on
   the MNU optimum — two completely independent exact solvers *)
let prop_ilp_agrees_with_exact_mcg =
  QCheck.Test.make ~name:"ILP-based exact MNU = combinatorial exact MCG"
    ~count:30 arb_tiny (fun p ->
      let inst = Reduction.cover_instance ~filter_over_budget:true p in
      QCheck.assume (Optkit.Cover_instance.n_sets inst <= 14);
      let universe = Reduction.coverable_users p in
      let budgets =
        Array.init
          (Optkit.Cover_instance.n_groups inst)
          (Problem.ap_budget p)
      in
      let mcg = Optkit.Mcg.exact inst ~budgets ~universe () in
      let ilp_value =
        match Optimal.mnu p with Some v -> v.Optimal.value | None -> 0
      in
      mcg.Optkit.Mcg.proved_optimal
      && int_of_float (mcg.Optkit.Mcg.coverage_weight +. 0.5) = ilp_value)

let prop_greedy_never_beats_exact =
  QCheck.Test.make ~name:"greedy solutions never beat the exact optimum"
    ~count:40 arb_tiny (fun p ->
      let mla = Mla.run p and e_mla = Option.get (Optimal.mla p) in
      let mnu = Mnu.run p in
      let e_mnu =
        match Optimal.mnu p with
        | Some e -> e.Optimal.value
        | None -> 0
      in
      mla.Solution.total_load >= e_mla.Optimal.value -. 1e-9
      && mnu.Solution.satisfied <= e_mnu)

(* ------------------------------------------------------------------ *)
(* Appendix A: Subset Sum <-> MNU on the constructed WLAN             *)
(* ------------------------------------------------------------------ *)

let test_subset_sum_reduction () =
  (* the constructed single-AP WLAN serves exactly best_at_most(target)
     users under the optimal association *)
  let cases =
    [
      ([ 1; 2; 3 ], 4) (* exact hit: 1+3 *);
      ([ 2; 4 ], 5) (* best is 4 *);
      ([ 3; 3; 3 ], 7) (* best is 6 *);
      ([ 1 ], 10) (* best is 1 *);
    ]
  in
  List.iter
    (fun (numbers, target) ->
      let p = Examples.of_subset_sum ~numbers ~target in
      let expected = Optkit.Subset_sum.best_at_most numbers target in
      let v = Optimal.mnu p in
      let got = match v with Some v -> v.Optimal.value | None -> 0 in
      Alcotest.(check int)
        (Fmt.str "numbers %a target %d" Fmt.(Dump.list int) numbers target)
        expected got)
    cases

let prop_subset_sum_reduction_random =
  QCheck.Test.make ~name:"MNU optimum on Appendix-A WLAN = subset-sum DP"
    ~count:30
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 4) (int_range 1 4))
        (int_range 1 8))
    (fun (numbers, target) ->
      let p = Examples.of_subset_sum ~numbers ~target in
      let expected = Optkit.Subset_sum.best_at_most numbers target in
      let got =
        match Optimal.mnu p with Some v -> v.Optimal.value | None -> 0
      in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Appendix B: Makespan <-> BLA on the constructed WLAN               *)
(* ------------------------------------------------------------------ *)

let test_makespan_reduction () =
  (* optimal BLA max load on the constructed WLAN = optimal makespan
     (after the same normalization) *)
  let jobs = [ 3.; 3.; 2.; 2.; 2. ] and machines = 2 in
  let scale = List.fold_left ( +. ) 1. jobs in
  let p = Examples.of_makespan ~jobs ~machines in
  let e = Option.get (Optimal.bla p) in
  let ms = Optkit.Makespan.exact ~machines ~jobs in
  check_float "BLA opt = makespan opt" (ms.Optkit.Makespan.makespan /. scale)
    e.Optimal.value

let prop_makespan_reduction_random =
  QCheck.Test.make ~name:"BLA optimum on Appendix-B WLAN = exact makespan"
    ~count:25
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 5) (float_range 0.5 4.))
        (int_range 1 3))
    (fun (jobs, machines) ->
      let scale = List.fold_left ( +. ) 1. jobs in
      let p = Examples.of_makespan ~jobs ~machines in
      match Optimal.bla p with
      | None -> false
      | Some e ->
          let ms = Optkit.Makespan.exact ~machines ~jobs in
          feq ~eps:1e-6 (ms.Optkit.Makespan.makespan /. scale) e.Optimal.value)

(* ------------------------------------------------------------------ *)
(* Appendix C: Set Cover <-> MLA on the constructed WLAN              *)
(* ------------------------------------------------------------------ *)

let test_set_cover_reduction () =
  (* {0,1},{1,2},{2,3} covering {0..3}: cardinality optimum is 2 sets *)
  let subsets = [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let p = Examples.of_set_cover ~n_users:4 ~subsets ~cost:0.1 in
  let e = Option.get (Optimal.mla p) in
  check_float "2 APs at 0.1 each" 0.2 e.Optimal.value

let prop_set_cover_reduction_random =
  QCheck.Test.make ~name:"MLA optimum on Appendix-C WLAN = exact set cover"
    ~count:30
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 1 6 in
         let* m = int_range 1 5 in
         let* subsets =
           list_repeat m (list_size (int_range 1 n) (int_range 0 (n - 1)))
         in
         (* ensure coverability *)
         return (n, List.init n Fun.id :: subsets)))
    (fun (n, subsets) ->
      let cost = 0.125 in
      let p = Examples.of_set_cover ~n_users:n ~subsets ~cost in
      let e = Option.get (Optimal.mla p) in
      (* exact set cover via optkit on the same family *)
      let inst =
        Optkit.Cover_instance.make ~n_elements:n
          ~sets:
            (Array.of_list
               (List.map (fun s -> Optkit.Bitset.of_list n s) subsets))
          ~costs:(Array.make (List.length subsets) cost)
          ~payload:(Array.of_list (List.mapi (fun i _ -> i) subsets))
          ()
      in
      let sc = Option.get (Optkit.Set_cover.exact inst) in
      feq e.Optimal.value sc.Optkit.Set_cover.cost)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mla_exact_matches_brute;
      prop_bla_exact_matches_brute;
      prop_mnu_exact_matches_brute;
      prop_greedy_never_beats_exact;
      prop_ilp_agrees_with_exact_mcg;
      prop_subset_sum_reduction_random;
      prop_makespan_reduction_random;
      prop_set_cover_reduction_random;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "optimal"
    [
      ( "fig1 optima",
        [
          tc "MNU optimum 4" test_optimal_mnu_fig1;
          tc "BLA optimum 1/2" test_optimal_bla_fig1;
          tc "MLA optimum 7/12" test_optimal_mla_fig1;
          tc "brute force agrees" test_brute_force_fig1;
        ] );
      ( "np-hardness constructions",
        [
          tc "Appendix A (subset sum)" test_subset_sum_reduction;
          tc "Appendix B (makespan)" test_makespan_reduction;
          tc "Appendix C (set cover)" test_set_cover_reduction;
        ] );
      ("properties", qcheck_cases);
    ]
