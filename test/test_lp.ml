(* Tests for the dense two-phase simplex (Optkit.Lp) and the 0/1 branch
   and bound (Optkit.Ilp), including randomized cross-checks against
   exhaustive enumeration. *)

open Optkit

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let opt = function
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"

let c coeffs cmp rhs = Lp.{ coeffs; cmp; rhs }

(* ------------------------------------------------------------------ *)
(* LP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lp_textbook_max () =
  (* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2,6) *)
  let p =
    Lp.
      {
        n_vars = 2;
        maximize = true;
        objective = [| 3.; 5. |];
        constraints =
          [|
            c [| 1.; 0. |] Le 4.;
            c [| 0.; 2. |] Le 12.;
            c [| 3.; 2. |] Le 18.;
          |];
      }
  in
  let s = opt (Lp.solve p) in
  check_float "objective" 36. s.Lp.objective_value;
  check_float "x" 2. s.Lp.x.(0);
  check_float "y" 6. s.Lp.x.(1)

let test_lp_minimization_with_ge () =
  (* min 2x + 3y s.t. x + y >= 4; x >= 1 -> 9 at (3? no) ...
     cheapest per unit is x: all on x -> x=4, y=0, cost 8 *)
  let p =
    Lp.
      {
        n_vars = 2;
        maximize = false;
        objective = [| 2.; 3. |];
        constraints = [| c [| 1.; 1. |] Ge 4.; c [| 1.; 0. |] Ge 1. |];
      }
  in
  let s = opt (Lp.solve p) in
  check_float "objective" 8. s.Lp.objective_value;
  check_float "x" 4. s.Lp.x.(0)

let test_lp_equality () =
  (* max x + y s.t. x + y = 3; x <= 1 -> 3 with x <= 1 *)
  let p =
    Lp.
      {
        n_vars = 2;
        maximize = true;
        objective = [| 1.; 1. |];
        constraints = [| c [| 1.; 1. |] Eq 3.; c [| 1.; 0. |] Le 1. |];
      }
  in
  let s = opt (Lp.solve p) in
  check_float "objective" 3. s.Lp.objective_value;
  Alcotest.(check bool) "x within bound" true (s.Lp.x.(0) <= 1. +. 1e-9)

let test_lp_infeasible () =
  let p =
    Lp.
      {
        n_vars = 1;
        maximize = true;
        objective = [| 1. |];
        constraints = [| c [| 1. |] Ge 5.; c [| 1. |] Le 2. |];
      }
  in
  (match Lp.solve p with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_lp_unbounded () =
  let p =
    Lp.
      {
        n_vars = 1;
        maximize = true;
        objective = [| 1. |];
        constraints = [| c [| -1. |] Le 1. |];
      }
  in
  match Lp.solve p with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_lp_negative_rhs_normalization () =
  (* -x <= -2  <=>  x >= 2; min x -> 2 *)
  let p =
    Lp.
      {
        n_vars = 1;
        maximize = false;
        objective = [| 1. |];
        constraints = [| c [| -1. |] Le (-2.) |];
      }
  in
  let s = opt (Lp.solve p) in
  check_float "x = 2" 2. s.Lp.x.(0)

let test_lp_degenerate () =
  (* redundant constraints / degenerate vertex *)
  let p =
    Lp.
      {
        n_vars = 2;
        maximize = true;
        objective = [| 1.; 1. |];
        constraints =
          [|
            c [| 1.; 0. |] Le 1.;
            c [| 1.; 0. |] Le 1.;
            c [| 0.; 1. |] Le 1.;
            c [| 1.; 1. |] Le 2.;
          |];
      }
  in
  let s = opt (Lp.solve p) in
  check_float "objective" 2. s.Lp.objective_value

let test_lp_fractional_relaxation_value () =
  (* LP relaxation of vertex cover on a triangle: all x = 1/2, value 1.5 *)
  let p =
    Lp.
      {
        n_vars = 3;
        maximize = false;
        objective = [| 1.; 1.; 1. |];
        constraints =
          [|
            c [| 1.; 1.; 0. |] Ge 1.;
            c [| 0.; 1.; 1. |] Ge 1.;
            c [| 1.; 0.; 1. |] Ge 1.;
          |];
      }
  in
  let s = opt (Lp.solve p) in
  check_float "fractional optimum" 1.5 s.Lp.objective_value

(* random LPs, checked against brute force over constraint-boundary grid:
   instead we check weak duality-style invariants: solution is feasible and
   no sampled feasible point beats it *)
let gen_lp =
  QCheck.Gen.(
    let* n_vars = int_range 1 4 in
    let* n_cons = int_range 1 5 in
    let* maximize = bool in
    let* objective = array_repeat n_vars (float_range (-3.) 3.) in
    let* constraints =
      array_repeat n_cons
        (let* coeffs = array_repeat n_vars (float_range 0.1 3.) in
         let* rhs = float_range 0.5 10. in
         return (c coeffs Lp.Le rhs))
    in
    (* all-positive Le rows with positive rhs: feasible (origin) and bounded
       in the maximize direction only if objective <= 0 somewhere... make it
       bounded by adding a box row *)
    let box = c (Array.make n_vars 1.) Lp.Le 20. in
    return
      Lp.
        {
          n_vars;
          maximize;
          objective;
          constraints = Array.append constraints [| box |];
        })

let arb_lp = QCheck.make gen_lp

let feasible_point (p : Lp.problem) x =
  Array.for_all (fun v -> v >= -1e-7) x
  && Array.for_all
       (fun ct ->
         let dot = ref 0. in
         Array.iteri (fun i v -> dot := !dot +. (v *. x.(i))) ct.Lp.coeffs;
         match ct.Lp.cmp with
         | Lp.Le -> !dot <= ct.Lp.rhs +. 1e-6
         | Lp.Ge -> !dot >= ct.Lp.rhs -. 1e-6
         | Lp.Eq -> Float.abs (!dot -. ct.Lp.rhs) <= 1e-6)
       p.Lp.constraints

let prop_lp_solution_feasible =
  QCheck.Test.make ~name:"LP optimum is feasible" ~count:200 arb_lp (fun p ->
      match Lp.solve p with
      | Lp.Optimal s -> feasible_point p s.Lp.x
      | Lp.Infeasible -> false (* origin is always feasible here *)
      | Lp.Unbounded -> false (* box bounds everything *))

let prop_lp_beats_random_feasible_points =
  QCheck.Test.make ~name:"no sampled feasible point beats the LP optimum"
    ~count:100 arb_lp (fun p ->
      match Lp.solve p with
      | Lp.Optimal s ->
          let rng = Random.State.make [| 37 |] in
          let ok = ref true in
          for _ = 1 to 200 do
            let x =
              Array.init p.Lp.n_vars (fun _ -> Random.State.float rng 5.)
            in
            if feasible_point p x then begin
              let v = ref 0. in
              Array.iteri
                (fun i o -> v := !v +. (o *. x.(i)))
                p.Lp.objective;
              if p.Lp.maximize then begin
                if !v > s.Lp.objective_value +. 1e-5 then ok := false
              end
              else if !v < s.Lp.objective_value -. 1e-5 then ok := false
            end
          done;
          !ok
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* ILP                                                                *)
(* ------------------------------------------------------------------ *)

let test_ilp_knapsack () =
  (* max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> 16 *)
  let base =
    Lp.
      {
        n_vars = 3;
        maximize = true;
        objective = [| 10.; 6.; 4. |];
        constraints = [| c [| 1.; 1.; 1. |] Le 2. |];
      }
  in
  let sol =
    Option.get (Ilp.solve { Ilp.base; binary = [| true; true; true |] })
  in
  check_float "objective 16" 16. sol.Ilp.objective_value;
  Alcotest.(check bool) "proved" true sol.Ilp.proved_optimal

let test_ilp_fractional_gap () =
  (* knapsack where LP relaxation is fractional:
     max 3a + 2b s.t. 2a + 2b <= 3 (binary): LP gives a=1, b=0.5 (4);
     ILP must give a=1, b=0 (3) *)
  let base =
    Lp.
      {
        n_vars = 2;
        maximize = true;
        objective = [| 3.; 2. |];
        constraints = [| c [| 2.; 2. |] Le 3. |];
      }
  in
  let sol = Option.get (Ilp.solve { Ilp.base; binary = [| true; true |] }) in
  check_float "objective 3" 3. sol.Ilp.objective_value;
  check_float "a" 1. sol.Ilp.x.(0);
  check_float "b" 0. sol.Ilp.x.(1)

let test_ilp_vertex_cover_triangle () =
  (* integral vertex cover of a triangle costs 2 (LP said 1.5) *)
  let base =
    Lp.
      {
        n_vars = 3;
        maximize = false;
        objective = [| 1.; 1.; 1. |];
        constraints =
          [|
            c [| 1.; 1.; 0. |] Ge 1.;
            c [| 0.; 1.; 1. |] Ge 1.;
            c [| 1.; 0.; 1. |] Ge 1.;
          |];
      }
  in
  let sol =
    Option.get (Ilp.solve { Ilp.base; binary = [| true; true; true |] })
  in
  check_float "cover size 2" 2. sol.Ilp.objective_value

let test_ilp_mixed_continuous () =
  (* min z s.t. z >= 3a, z >= 3b, a + b >= 1 (a,b binary, z continuous):
     one of a,b is 1 -> z = 3 *)
  let base =
    Lp.
      {
        n_vars = 3;
        maximize = false;
        objective = [| 0.; 0.; 1. |];
        constraints =
          [|
            c [| 3.; 0.; -1. |] Le 0.;
            c [| 0.; 3.; -1. |] Le 0.;
            c [| 1.; 1.; 0. |] Ge 1.;
          |];
      }
  in
  let sol =
    Option.get (Ilp.solve { Ilp.base; binary = [| true; true; false |] })
  in
  check_float "z = 3" 3. sol.Ilp.objective_value

let test_ilp_initial_bound_prunes () =
  (* with initial_bound equal to the optimum, nothing strictly better
     exists and the solver reports None *)
  let base =
    Lp.
      {
        n_vars = 2;
        maximize = true;
        objective = [| 1.; 1. |];
        constraints = [| c [| 1.; 1. |] Le 1. |];
      }
  in
  let t = { Ilp.base; binary = [| true; true |] } in
  Alcotest.(check bool) "pruned to None" true
    (Ilp.solve ~initial_bound:1.0 ~integral_objective:true t = None);
  let sol = Option.get (Ilp.solve ~initial_bound:0.5 t) in
  check_float "still finds 1" 1. sol.Ilp.objective_value

let test_ilp_node_limit_truncation () =
  (* a 12-var knapsack with node_limit 1: whatever comes back must admit
     it is unproven *)
  let n = 12 in
  let base =
    Lp.
      {
        n_vars = n;
        maximize = true;
        objective = Array.init n (fun i -> float_of_int (i + 1));
        constraints = [| c (Array.make n 1.) Le 3.5 |];
      }
  in
  match Ilp.solve ~node_limit:1 { Ilp.base; binary = Array.make n true } with
  | None -> ()
  | Some sol -> Alcotest.(check bool) "not proved" false sol.Ilp.proved_optimal

let test_lp_no_constraints () =
  (* empty constraint set: maximize a positive objective is unbounded,
     a non-positive one is optimal at the origin *)
  let p obj =
    Lp.{ n_vars = 1; maximize = true; objective = [| obj |]; constraints = [||] }
  in
  (match Lp.solve (p 1.) with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded");
  match Lp.solve (p (-1.)) with
  | Lp.Optimal s -> check_float "origin" 0. s.Lp.objective_value
  | _ -> Alcotest.fail "expected optimal at origin"

let test_ilp_infeasible () =
  let base =
    Lp.
      {
        n_vars = 1;
        maximize = true;
        objective = [| 1. |];
        constraints = [| c [| 1. |] Ge 2.; c [| 1. |] Le 1. |];
      }
  in
  Alcotest.(check bool) "no solution" true
    (Ilp.solve { Ilp.base; binary = [| true |] } = None)

(* random 0/1 knapsack-like ILPs vs exhaustive enumeration *)
let gen_ilp =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* maximize = bool in
    let* objective = array_repeat n (float_range (-2.) 5.) in
    let* weights = array_repeat n (float_range 0.1 3.) in
    let* cap = float_range 0.5 6. in
    (* for minimization, add a >= row so the zero vector is not trivially
       optimal: sum x >= 1 whenever some x exists *)
    let cons =
      if maximize then [| c weights Lp.Le cap |]
      else [| c weights Lp.Le cap; c (Array.make n 1.) Lp.Ge 1. |]
    in
    return
      Lp.{ n_vars = n; maximize; objective; constraints = cons })

let exhaustive_best (p : Lp.problem) =
  let n = p.Lp.n_vars in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1. else 0.) in
    if feasible_point p x then begin
      let v = ref 0. in
      Array.iteri (fun i o -> v := !v +. (o *. x.(i))) p.Lp.objective;
      match !best with
      | None -> best := Some !v
      | Some b ->
          if (p.Lp.maximize && !v > b) || ((not p.Lp.maximize) && !v < b) then
            best := Some !v
    end
  done;
  !best

let prop_ilp_matches_exhaustive =
  QCheck.Test.make ~name:"ILP = exhaustive enumeration on random knapsacks"
    ~count:120 (QCheck.make gen_ilp) (fun base ->
      let t = { Ilp.base; binary = Array.make base.Lp.n_vars true } in
      match (Ilp.solve t, exhaustive_best base) with
      | None, None -> true
      | Some sol, Some b -> feq ~eps:1e-5 sol.Ilp.objective_value b
      | Some _, None | None, Some _ -> false)

let prop_lp_relaxation_bounds_ilp =
  QCheck.Test.make
    ~name:"LP relaxation bounds the ILP optimum from the right side"
    ~count:100 (QCheck.make gen_ilp) (fun base ->
      let t = { Ilp.base; binary = Array.make base.Lp.n_vars true } in
      match (Lp.solve base, Ilp.solve t) with
      | Lp.Optimal lp, Some ilp ->
          if base.Lp.maximize then
            lp.Lp.objective_value >= ilp.Ilp.objective_value -. 1e-5
          else lp.Lp.objective_value <= ilp.Ilp.objective_value +. 1e-5
      | Lp.Infeasible, None -> true
      | Lp.Optimal _, None -> true (* fractional-feasible, 0/1-infeasible *)
      | _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lp_solution_feasible;
      prop_lp_beats_random_feasible_points;
      prop_ilp_matches_exhaustive;
      prop_lp_relaxation_bounds_ilp;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lp_ilp"
    [
      ( "lp",
        [
          tc "textbook max" test_lp_textbook_max;
          tc "minimization with >=" test_lp_minimization_with_ge;
          tc "equality" test_lp_equality;
          tc "infeasible" test_lp_infeasible;
          tc "unbounded" test_lp_unbounded;
          tc "negative rhs" test_lp_negative_rhs_normalization;
          tc "degenerate" test_lp_degenerate;
          tc "fractional relaxation" test_lp_fractional_relaxation_value;
        ] );
      ( "ilp",
        [
          tc "knapsack" test_ilp_knapsack;
          tc "fractional gap" test_ilp_fractional_gap;
          tc "vertex cover triangle" test_ilp_vertex_cover_triangle;
          tc "mixed continuous" test_ilp_mixed_continuous;
          tc "initial bound prunes" test_ilp_initial_bound_prunes;
          tc "node-limit truncation" test_ilp_node_limit_truncation;
          tc "no constraints" test_lp_no_constraints;
          tc "infeasible" test_ilp_infeasible;
        ] );
      ("properties", qcheck_cases);
    ]
