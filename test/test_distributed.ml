(* Tests for the distributed algorithms (§4.2, §5.2, §6.2): the paper's
   step-by-step examples on Figure 1, the Figure 4 oscillation under
   simultaneous decisions, convergence lemmas (1 and 2) as properties, and
   the lock-based coordination extension (§8). *)

open Wlan_model
open Mcast_core

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let fig1_mnu = Examples.fig1 ~session_rate_mbps:3.
let fig1_1m = Examples.fig1 ~session_rate_mbps:1.

(* ------------------------------------------------------------------ *)
(* The paper's walk-throughs on Figure 1                              *)
(* ------------------------------------------------------------------ *)

let test_distributed_mnu_fig1 () =
  (* §4.2: at 3 Mbps, sequential order u1..u5 ends with u1,u3 on a1 and
     u4,u5 on a2: 4 of 5 users served (u2 blocked by a1's budget) *)
  let sol, o = Distributed.mnu fig1_mnu in
  Alcotest.(check int) "4 users served" 4 sol.Solution.satisfied;
  Alcotest.(check bool) "converged" true o.Distributed.converged;
  Alcotest.(check (option int)) "u1 -> a1" (Some 0)
    (Association.ap_of sol.assoc 0);
  Alcotest.(check (option int)) "u2 unserved" None
    (Association.ap_of sol.assoc 1);
  Alcotest.(check (option int)) "u3 -> a1" (Some 0)
    (Association.ap_of sol.assoc 2);
  Alcotest.(check (option int)) "u4 -> a2" (Some 1)
    (Association.ap_of sol.assoc 3);
  Alcotest.(check (option int)) "u5 -> a2" (Some 1)
    (Association.ap_of sol.assoc 4);
  Alcotest.(check bool) "budget ok" true
    (Solution.respects_budget fig1_mnu sol)

let test_distributed_mla_fig1 () =
  (* §6.2: at 1 Mbps all users end on a1, total load 7/12 (the optimum) *)
  let sol, o = Distributed.mla fig1_1m in
  Alcotest.(check int) "all served" 5 sol.Solution.satisfied;
  Alcotest.(check bool) "converged" true o.Distributed.converged;
  Array.iteri
    (fun u a -> if a <> 0 then Alcotest.failf "user %d not on a1" u)
    sol.assoc;
  check_float "total 7/12" (7. /. 12.) sol.total_load

let test_distributed_bla_fig1 () =
  (* §5.2: at 1 Mbps, u1,u2,u3 on a1 and u4,u5 on a2; loads 1/2 and 1/3
     (the optimal maximum) *)
  let sol, o = Distributed.bla fig1_1m in
  Alcotest.(check bool) "converged" true o.Distributed.converged;
  Alcotest.(check int) "all served" 5 sol.Solution.satisfied;
  Alcotest.(check (option int)) "u1 -> a1" (Some 0)
    (Association.ap_of sol.assoc 0);
  Alcotest.(check (option int)) "u2 -> a1" (Some 0)
    (Association.ap_of sol.assoc 1);
  Alcotest.(check (option int)) "u3 -> a1" (Some 0)
    (Association.ap_of sol.assoc 2);
  Alcotest.(check (option int)) "u4 -> a2" (Some 1)
    (Association.ap_of sol.assoc 3);
  Alcotest.(check (option int)) "u5 -> a2" (Some 1)
    (Association.ap_of sol.assoc 4);
  check_float "a1 load" 0.5 sol.ap_loads.(0);
  check_float "a2 load" (1. /. 3.) sol.ap_loads.(1);
  check_float "max = optimal 1/2" 0.5 sol.max_load

(* ------------------------------------------------------------------ *)
(* Figure 4: simultaneous decisions oscillate                          *)
(* ------------------------------------------------------------------ *)

let test_fig4_initial_loads () =
  let loads = Loads.ap_loads Examples.fig4 Examples.fig4_initial in
  check_float "a1" 0.25 loads.(0);
  check_float "a2" 0.25 loads.(1)

let test_fig4_simultaneous_oscillates () =
  let o =
    Distributed.run ~init:Examples.fig4_initial ~scheduler:Simultaneous
      ~objective:Min_total_load Examples.fig4
  in
  Alcotest.(check bool) "oscillated" true o.Distributed.oscillated;
  Alcotest.(check bool) "not converged" false o.Distributed.converged

let test_fig4_sequential_converges () =
  let o =
    Distributed.run ~init:Examples.fig4_initial ~scheduler:Sequential
      ~objective:Min_total_load Examples.fig4
  in
  Alcotest.(check bool) "converged" true o.Distributed.converged;
  (* u2 moves to a2 (total 1/5 + 1/4 = 0.45), then u3 has nothing better *)
  check_float "total after convergence" 0.45
    (Loads.total_load Examples.fig4 o.Distributed.assoc)

let test_fig4_locked_converges () =
  let o =
    Distributed.run ~init:Examples.fig4_initial ~scheduler:Locked
      ~objective:Min_total_load Examples.fig4
  in
  Alcotest.(check bool) "converged" true o.Distributed.converged;
  Alcotest.(check bool) "no oscillation" false o.Distributed.oscillated;
  check_float "same quality as sequential" 0.45
    (Loads.total_load Examples.fig4 o.Distributed.assoc)

let test_fig4_bla_simultaneous_oscillates () =
  (* the paper: the same scenario breaks the BLA rule too *)
  let o =
    Distributed.run ~init:Examples.fig4_initial ~scheduler:Simultaneous
      ~objective:Min_load_vector Examples.fig4
  in
  Alcotest.(check bool) "oscillated" true o.Distributed.oscillated

(* ------------------------------------------------------------------ *)
(* Decision rule details                                              *)
(* ------------------------------------------------------------------ *)

let test_decide_tie_breaks_by_signal () =
  (* two empty APs, equal resulting loads: the stronger signal wins *)
  let signal = [| [| 1. |]; [| 2. |] |] in
  let p =
    Problem.make ~signal ~session_rates:[| 1. |] ~user_session:[| 0 |]
      ~rates:[| [| 6. |]; [| 6. |] |]
      ~budget:0.9 ()
  in
  let assoc = Association.empty ~n_users:1 in
  let loads = Loads.ap_loads p assoc in
  Alcotest.(check (option int)) "stronger signal" (Some 1)
    (Distributed.decide p assoc ~loads ~objective:Min_total_load 0)

let test_decide_respects_budget () =
  (* a full AP is not a candidate *)
  let p =
    Problem.make ~session_rates:[| 1.; 1. |] ~user_session:[| 0; 1 |]
      ~rates:[| [| 1.2; 1.2 |] |]
      ~budget:0.9 ()
  in
  let assoc : Association.t = [| 0; -1 |] in
  (* a0 already spends 1/1.2 = 0.833 on s0; adding s1 would exceed 0.9 *)
  let loads = Loads.ap_loads p assoc in
  Alcotest.(check (option int)) "no feasible AP" None
    (Distributed.decide p assoc ~loads ~objective:Min_total_load 1)

let test_decide_no_pointless_move () =
  (* a served user with nothing better must stay *)
  let p = fig1_1m in
  let sol, _ = Distributed.mla p in
  let loads = Loads.ap_loads p sol.Solution.assoc in
  for u = 0 to 4 do
    Alcotest.(check (option int))
      (Fmt.str "user %d stays" u)
      None
      (Distributed.decide p sol.Solution.assoc ~loads
         ~objective:Min_total_load u)
  done

let test_unserved_user_joins_even_if_load_grows () =
  (* joining always beats staying unserved, whatever the load delta *)
  let p =
    Problem.make ~session_rates:[| 1. |] ~user_session:[| 0 |]
      ~rates:[| [| 6. |] |] ~budget:0.9 ()
  in
  let assoc = Association.empty ~n_users:1 in
  let loads = Loads.ap_loads p assoc in
  Alcotest.(check (option int)) "joins" (Some 0)
    (Distributed.decide p assoc ~loads ~objective:Min_total_load 0)

(* ------------------------------------------------------------------ *)
(* Convergence properties (Lemmas 1 and 2)                            *)
(* ------------------------------------------------------------------ *)

let gen_problem =
  QCheck.Gen.(
    let* n_aps = int_range 2 12 in
    let* n_users = int_range 2 25 in
    let* n_sessions = int_range 1 4 in
    let* seed = int_range 0 1_000_000 in
    return
      (List.hd
         (Scenario_gen.problems ~seed ~n:1
            {
              Scenario_gen.paper_default with
              area_w = 600.;
              area_h = 600.;
              n_aps;
              n_users;
              n_sessions;
              ensure_coverage = true;
            })))

let arb_problem = QCheck.make gen_problem

let prop_sequential_mnu_converges =
  QCheck.Test.make ~name:"sequential MNU/MLA converges (Lemma 1)" ~count:60
    arb_problem (fun p ->
      let _, o = Distributed.mnu p in
      o.Distributed.converged)

let prop_sequential_bla_converges =
  QCheck.Test.make ~name:"sequential BLA converges (Lemma 2)" ~count:60
    arb_problem (fun p ->
      let _, o = Distributed.bla p in
      o.Distributed.converged)

let prop_locked_converges =
  QCheck.Test.make ~name:"locked scheduler converges (both objectives)"
    ~count:40 arb_problem (fun p ->
      let a = Distributed.run ~scheduler:Locked ~objective:Min_total_load p in
      let b = Distributed.run ~scheduler:Locked ~objective:Min_load_vector p in
      a.Distributed.converged && b.Distributed.converged)

let prop_locked_respects_budget =
  QCheck.Test.make ~name:"locked scheduler solutions respect budgets"
    ~count:40 arb_problem (fun p ->
      let o = Distributed.run ~scheduler:Locked ~objective:Min_total_load p in
      Loads.respects_budget p o.Distributed.assoc
      && Association.in_range_ok p o.Distributed.assoc)

let prop_distributed_budget =
  QCheck.Test.make ~name:"distributed solutions respect budgets" ~count:60
    arb_problem (fun p ->
      let sol, _ = Distributed.mnu p in
      Solution.respects_budget p sol && Solution.in_range_ok p sol)

let prop_distributed_serves_coverable_when_budget_allows =
  QCheck.Test.make
    ~name:"distributed BLA serves every coverable user at 0.9 budget"
    ~count:60 arb_problem (fun p ->
      let sol, _ = Distributed.bla p in
      (* one user costs at most 1/6 < 0.9, so nobody stays unserved *)
      sol.Solution.satisfied = List.length (Problem.coverable_users p))

let prop_moves_monotone_total =
  QCheck.Test.make
    ~name:"each sequential MLA pass never increases the total load" ~count:40
    arb_problem (fun p ->
      (* run one pass at a time and watch the potential *)
      let _, n_users = Problem.dims p in
      let assoc = ref (Association.empty ~n_users) in
      let prev = ref infinity in
      let ok = ref true in
      for _pass = 1 to 5 do
        let o =
          Distributed.run ~init:!assoc ~max_rounds:1 ~scheduler:Sequential
            ~objective:Min_total_load p
        in
        assoc := o.Distributed.assoc;
        let t = Loads.total_load p !assoc in
        (* the very first pass only adds users (joins), so compare from the
           first fully-joined state onwards *)
        if !prev <> infinity && t > !prev +. 1e-9 then ok := false;
        prev := t
      done;
      !ok)

let prop_bla_vector_potential_decreases =
  QCheck.Test.make
    ~name:"each sequential BLA pass never worsens the sorted load vector"
    ~count:40 arb_problem (fun p ->
      let _, n_users = Problem.dims p in
      let assoc = ref (Association.empty ~n_users) in
      let prev = ref None in
      let ok = ref true in
      for _pass = 1 to 5 do
        let o =
          Distributed.run ~init:!assoc ~max_rounds:1 ~scheduler:Sequential
            ~objective:Min_load_vector p
        in
        assoc := o.Distributed.assoc;
        let v = Loads.sorted_load_vector (Loads.ap_loads p !assoc) in
        (match !prev with
        | Some pv ->
            (* joins by still-unserved users may grow the vector, so only
               compare once everyone coverable is on board *)
            if
              Association.served_count !assoc
              = List.length (Problem.coverable_users p)
              && Array.length pv = Array.length v
              && Loads.compare_load_vectors_eps v pv > 0
            then ok := false
        | None -> ());
        if
          Association.served_count !assoc
          = List.length (Problem.coverable_users p)
        then prev := Some v
      done;
      !ok)

(* The eps comparator underpins both Lemmas: were its strict order
   intransitive (the pre-fix behavior: sub-eps differences skipped
   entry-by-entry could chain a≈b, b≈c, a≉c), a cycle of "improving"
   moves could revisit an earlier association. Replay the sequential
   loop move by move through the public decision rule and check that no
   association state ever recurs. *)
let prop_sequential_never_revisits =
  QCheck.Test.make
    ~name:"no sequential run revisits a seen association" ~count:40
    arb_problem (fun p ->
      let objectives = [ Distributed.Min_total_load; Min_load_vector ] in
      List.for_all
        (fun objective ->
          let _, n_users = Problem.dims p in
          let assoc = Association.empty ~n_users in
          let seen = Hashtbl.create 64 in
          Hashtbl.replace seen (Array.to_list assoc) ();
          let fresh = ref true in
          (try
             for _round = 1 to 100 do
               let moved = ref false in
               for u = 0 to n_users - 1 do
                 let loads = Loads.ap_loads p assoc in
                 match Distributed.decide p assoc ~loads ~objective u with
                 | None -> ()
                 | Some ap ->
                     assoc.(u) <- ap;
                     moved := true;
                     let key = Array.to_list assoc in
                     if Hashtbl.mem seen key then begin
                       fresh := false;
                       raise Exit
                     end
                     else Hashtbl.replace seen key ()
               done;
               if not !moved then raise Exit
             done
           with Exit -> ());
          !fresh)
        objectives)

(* Directly pin the transitivity of the comparator's strict order on
   near-tie vectors — the regression the fix above closes. (eps-equality
   itself cannot be transitive for any tolerance comparator: sub-eps
   steps chain; what matters for convergence is that a cycle of strict
   improvements is impossible.) *)
let prop_eps_compare_transitive =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* base = list_size (return n) (float_bound_inclusive 2.) in
      let* deltas =
        list_size (return (3 * n)) (float_bound_inclusive 2e-9)
      in
      return (base, deltas))
  in
  QCheck.Test.make ~name:"eps comparator is transitive on near-ties"
    ~count:500
    (QCheck.make gen)
    (fun (base, deltas) ->
      let d = Array.of_list deltas in
      let n = List.length base in
      let vec k =
        Loads.sorted_load_vector
          (Array.of_list
             (List.mapi (fun i x -> x +. d.((k * n) + i)) base))
      in
      let a = vec 0 and b = vec 1 and c = vec 2 in
      let cab = Loads.compare_load_vectors_eps a b
      and cbc = Loads.compare_load_vectors_eps b c
      and cac = Loads.compare_load_vectors_eps a c in
      (* a < b and b < c must give a < c (and by symmetry for >) *)
      (not (cab < 0 && cbc < 0) || cac < 0)
      && (not (cab > 0 && cbc > 0) || cac > 0))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bla_vector_potential_decreases;
      prop_sequential_never_revisits;
      prop_eps_compare_transitive;
      prop_sequential_mnu_converges;
      prop_sequential_bla_converges;
      prop_locked_converges;
      prop_locked_respects_budget;
      prop_distributed_budget;
      prop_distributed_serves_coverable_when_budget_allows;
      prop_moves_monotone_total;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "distributed"
    [
      ( "fig1 walk-throughs",
        [
          tc "distributed MNU (4 of 5)" test_distributed_mnu_fig1;
          tc "distributed MLA (all on a1)" test_distributed_mla_fig1;
          tc "distributed BLA (optimal 1/2)" test_distributed_bla_fig1;
        ] );
      ( "fig4 oscillation",
        [
          tc "initial loads" test_fig4_initial_loads;
          tc "simultaneous oscillates" test_fig4_simultaneous_oscillates;
          tc "sequential converges" test_fig4_sequential_converges;
          tc "locked converges" test_fig4_locked_converges;
          tc "BLA rule oscillates too" test_fig4_bla_simultaneous_oscillates;
        ] );
      ( "decision rule",
        [
          tc "signal tie-break" test_decide_tie_breaks_by_signal;
          tc "budget filter" test_decide_respects_budget;
          tc "no pointless move" test_decide_no_pointless_move;
          tc "unserved always joins" test_unserved_user_joins_even_if_load_grows;
        ] );
      ("properties", qcheck_cases);
    ]
