(* wlan-mcast: command-line front end for the multicast association-control
   library.

   Subcommands:
     solve     generate a random WLAN and run one or all algorithms
     simulate  full discrete-event run: scan, associate over the air, stream
     figures   reproduce paper figures, scenarios fanned out over --jobs
     churn     replay a churn & fault-injection script online
     profile   run a workload with deterministic counters + wall-clock spans
     example   replay the paper's Figure 1 walk-throughs

   Try:
     dune exec bin/wlan_mcast.exe -- solve --aps 100 --users 200
     dune exec bin/wlan_mcast.exe -- solve --algorithm mnu --budget 0.05
     dune exec bin/wlan_mcast.exe -- simulate --policy distributed-bla
     dune exec bin/wlan_mcast.exe -- figures fig9a -j 4
     dune exec bin/wlan_mcast.exe -- churn --script scenarios/churn_demo.churn
     dune exec bin/wlan_mcast.exe -- churn --fig4
     dune exec bin/wlan_mcast.exe -- example *)

open Cmdliner
open Wlan_model
open Mcast_core

(* ---------------- logging ---------------- *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_term =
  let doc = "Enable debug logging of algorithm internals." in
  Term.(
    const setup_logs $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc))

(* ---------------- shared scenario options ---------------- *)

type net_opts = {
  aps : int;
  users : int;
  sessions : int;
  rate : float;
  budget : float;
  area : float;
  seed : int;
}

let net_term =
  let aps = Arg.(value & opt int 50 & info [ "aps" ] ~doc:"Number of APs.") in
  let users =
    Arg.(value & opt int 100 & info [ "users" ] ~doc:"Number of users.")
  in
  let sessions =
    Arg.(value & opt int 5 & info [ "sessions" ] ~doc:"Number of multicast sessions.")
  in
  let rate =
    Arg.(value & opt float 1.0 & info [ "stream-rate" ] ~doc:"Session stream rate (Mbps).")
  in
  let budget =
    Arg.(value & opt float 0.9 & info [ "budget" ] ~doc:"Per-AP multicast load limit.")
  in
  let area =
    Arg.(value & opt float 1095.4 & info [ "area" ] ~doc:"Deployment area side (m).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let mk aps users sessions rate budget area seed =
    { aps; users; sessions; rate; budget; area; seed }
  in
  Term.(const mk $ aps $ users $ sessions $ rate $ budget $ area $ seed)

let scenario_io_terms =
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE"
          ~doc:"Load the WLAN from a saved scenario file instead of                 generating one (see --save-scenario).")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-scenario" ] ~docv:"FILE"
          ~doc:"Write the scenario to FILE for exact replay later.")
  in
  (load, save)

let scenario_of (o : net_opts) =
  let cfg =
    {
      Scenario_gen.paper_default with
      n_aps = o.aps;
      n_users = o.users;
      n_sessions = o.sessions;
      session_rate_mbps = o.rate;
      budget = o.budget;
      area_w = o.area;
      area_h = o.area;
    }
  in
  let rng = Random.State.make [| o.seed |] in
  Scenario_gen.generate ~rng cfg

(* ---------------- solve ---------------- *)

let algorithms =
  [
    ("ssa", fun p -> Ssa.run p);
    ("mla", fun p -> Mla.run p);
    ("mla-distributed", fun p -> fst (Distributed.mla p));
    ("bla", fun p -> Bla.run_exn ~mode:`Hard p);
    ("bla-soft", fun p -> Bla.run_exn ~mode:`Soft p);
    ("bla-distributed", fun p -> fst (Distributed.bla p));
    ("mnu", fun p -> Mnu.run p);
    ("mnu-distributed", fun p -> fst (Distributed.mnu p));
  ]

let solve_cmd =
  let algorithm =
    Arg.(
      value & opt string "all"
      & info [ "algorithm"; "a" ]
          ~doc:"Algorithm: all, ssa, mla, mla-distributed, bla, bla-soft, \
                bla-distributed, mnu, mnu-distributed.")
  in
  let show_assoc =
    Arg.(value & flag & info [ "show-association" ] ~doc:"Print the user->AP map.")
  in
  let load, save = scenario_io_terms in
  let run () net load save algorithm show_assoc =
    let sc =
      match load with
      | Some path -> Scenario_io.of_file path
      | None -> scenario_of net
    in
    Option.iter (fun path -> Scenario_io.to_file path sc) save;
    let p = Scenario.to_problem sc in
    Fmt.pr "%a@.%a@.@." Scenario.pp sc Problem.pp p;
    let selected =
      if algorithm = "all" then algorithms
      else
        match List.assoc_opt algorithm algorithms with
        | Some f -> [ (algorithm, f) ]
        | None ->
            Fmt.epr "unknown algorithm %S@." algorithm;
            exit 1
    in
    List.iter
      (fun (_, f) ->
        let sol = f p in
        Fmt.pr "%a@." Solution.pp sol;
        if show_assoc then Fmt.pr "  %a@." Association.pp sol.Solution.assoc)
      selected
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run association-control algorithms on a random WLAN")
    Term.(
      const run $ verbose_term $ net_term $ load $ save $ algorithm
      $ show_assoc)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let policy =
    Arg.(
      value & opt string "distributed-mla"
      & info [ "policy" ]
          ~doc:"Association policy: ssa, distributed-mla, distributed-bla, \
                simultaneous-mla, static-mla (centralized, pushed).")
  in
  let window =
    Arg.(value & opt float 1.0 & info [ "window" ] ~doc:"Streaming window (s).")
  in
  let load, save = scenario_io_terms in
  let run () net load save policy window =
    let sc =
      match load with
      | Some path -> Scenario_io.of_file path
      | None -> scenario_of net
    in
    Option.iter (fun path -> Scenario_io.to_file path sc) save;
    let p = Scenario.to_problem sc in
    let pol =
      match policy with
      | "ssa" -> Wlan_sim.Runner.Ssa_policy
      | "distributed-mla" ->
          Wlan_sim.Runner.Distributed_policy
            {
              objective = Distributed.Min_total_load;
              mode = Wlan_sim.Runner.Sequential;
              max_passes = 40;
            }
      | "distributed-bla" ->
          Wlan_sim.Runner.Distributed_policy
            {
              objective = Distributed.Min_load_vector;
              mode = Wlan_sim.Runner.Sequential;
              max_passes = 40;
            }
      | "simultaneous-mla" ->
          Wlan_sim.Runner.Distributed_policy
            {
              objective = Distributed.Min_total_load;
              mode = Wlan_sim.Runner.Simultaneous;
              max_passes = 40;
            }
      | "static-mla" ->
          Wlan_sim.Runner.Static_policy (Mla.run p).Solution.assoc
      | other ->
          Fmt.epr "unknown policy %S@." other;
          exit 1
    in
    let r = Wlan_sim.Runner.run ~streaming_window:window ~policy:pol sc in
    Fmt.pr "%a@.@." Scenario.pp sc;
    Fmt.pr
      "policy %s: %d/%d users served@.\
       passes %d, converged %b, oscillated %b@.\
       %d events over %.3f s of virtual time@.\
       analytic: total %.4f, max %.4f@.\
       measured: total %.4f, max %.4f@."
      policy r.Wlan_sim.Runner.solution.Solution.satisfied net.users
      r.Wlan_sim.Runner.passes r.Wlan_sim.Runner.converged
      r.Wlan_sim.Runner.oscillated r.Wlan_sim.Runner.events
      r.Wlan_sim.Runner.sim_time
      (Array.fold_left ( +. ) 0. r.Wlan_sim.Runner.analytic_loads)
      (Array.fold_left Float.max 0. r.Wlan_sim.Runner.analytic_loads)
      (Array.fold_left ( +. ) 0. r.Wlan_sim.Runner.measured_loads)
      (Array.fold_left Float.max 0. r.Wlan_sim.Runner.measured_loads)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Full discrete-event simulation: scan, associate, stream, measure")
    Term.(const run $ verbose_term $ net_term $ load $ save $ policy $ window)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let load, save = scenario_io_terms in
  let run () net load save =
    let sc =
      match load with
      | Some path -> Scenario_io.of_file path
      | None -> scenario_of net
    in
    Option.iter (fun path -> Scenario_io.to_file path sc) save;
    let p = Scenario.to_problem sc in
    Fmt.pr "%a@.@.%a@.@." Scenario.pp sc Topology_stats.pp
      (Topology_stats.of_problem p);
    (* channel plan feasibility under 12 and 3 channels; interaction
       reach is twice the model's radio range *)
    let cs = 2. *. Scenario.range sc in
    let edges = Channels.conflict_edges ~range:cs sc.Scenario.ap_pos in
    List.iter
      (fun n_channels ->
        let a = Channels.color ~n_channels ~n_aps:(Scenario.n_aps sc) edges in
        Fmt.pr "%d channels: %a@." n_channels Channels.pp a)
      [ 12; 3 ];
    (* algorithm comparison summary *)
    Fmt.pr "@.%a@.%a@.%a@." Solution.pp (Ssa.run p) Solution.pp (Mla.run p)
      Solution.pp
      (Bla.run_exn ~mode:`Hard p)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Deployment statistics: coverage, overlap, rates, channel plan,              and a quick algorithm comparison")
    Term.(const run $ verbose_term $ net_term $ load $ save)

(* ---------------- figures ---------------- *)

let figures_cmd =
  let ids = List.map fst Harness.Experiments.drivers in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FIGURE"
          ~doc:"Figure ids to reproduce (default: all). Known: fig9a..fig12c \
                and the ablate-*/ext-* studies; see $(b,bench/main.exe) for \
                the grouped variants.")
  in
  let scenarios =
    Arg.(
      value & opt int 40
      & info [ "scenarios" ] ~doc:"Random scenarios per point.")
  in
  let seed =
    Arg.(value & opt int 2007 & info [ "seed" ] ~doc:"Master seed.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Harness.Pool.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains evaluating scenarios in parallel (default: the \
             recommended domain count). Per-scenario seeds are split from \
             --seed before dispatch, so output is bit-identical for every \
             value of $(docv).")
  in
  let phy_ablation =
    Arg.(
      value & flag
      & info [ "phy-ablation" ]
          ~doc:"Run the PHY-model ablation (alias for the $(b,ablate-phy) \
                figure id): MNU/BLA/MLA/SSA quality and distributed \
                convergence under Table 1 vs Friis vs two-ray vs \
                log-distance link-rate models.")
  in
  let run () names phy_ablation scenarios seed jobs =
    let cfg =
      {
        Harness.Experiments.default_config with
        scenarios;
        seed;
        jobs = Int.max 1 jobs;
      }
    in
    let names =
      match (names, phy_ablation) with
      | [], false -> ids
      | ns, false -> ns
      | ns, true -> ns @ [ "ablate-phy" ]
    in
    List.iter
      (fun id ->
        match List.assoc_opt id Harness.Experiments.drivers with
        | Some f -> Fmt.pr "%a@." Harness.Report.pp_figure (f ?cfg:(Some cfg) ())
        | None ->
            Fmt.epr "unknown figure %S (known: %a)@." id
              Fmt.(list ~sep:sp string)
              ids;
            exit 1)
      names
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Reproduce the paper's figures, fanning scenarios out over --jobs \
          domains with deterministic output")
    Term.(
      const run $ verbose_term $ names $ phy_ablation $ scenarios $ seed $ jobs)

(* ---------------- churn ---------------- *)

(* Seed-split tag for the generated-script RNG (PR-1 discipline: every
   derived stream gets its own constant tag). *)
let churn_split_tag = 0x0c817a4

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let churn_cmd =
  let load, save = scenario_io_terms in
  let script_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Replay the churn script from FILE instead of generating one \
                (see --save-script).")
  in
  let save_script =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-script" ] ~docv:"FILE"
          ~doc:"Write the churn script to FILE for exact replay later.")
  in
  let gen_events =
    Arg.(
      value & opt int 20
      & info [ "gen-events" ]
          ~doc:"Generated script length when --script is not given.")
  in
  let duration =
    Arg.(
      value & opt float 60.
      & info [ "duration" ] ~doc:"Generated script duration (s).")
  in
  let objective =
    Arg.(
      value & opt string "all"
      & info [ "objective"; "o" ]
          ~doc:"Algorithm variant: mnu, bla, mla or all.")
  in
  let mode =
    Arg.(
      value & opt string "sequential"
      & info [ "mode" ]
          ~doc:"Settle discipline: sequential or simultaneous (the latter \
                can oscillate, Fig. 4).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains running the algorithm variants in parallel. A churn \
             replay is a pure function of (scenario, script, variant), and \
             results re-assemble in variant order, so traces and metrics \
             are byte-identical for every value of $(docv).")
  in
  let max_rounds =
    Arg.(
      value & opt int 200
      & info [ "max-rounds" ] ~doc:"Decision-round cap per settle.")
  in
  let no_baseline =
    Arg.(
      value & flag
      & info [ "no-baseline" ]
          ~doc:"Skip the fresh static solve after each step (drops the \
                overshoot metrics, makes long replays cheap).")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the event traces of all variants to FILE.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the disruption metrics as JSON to FILE.")
  in
  let metrics_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-csv" ] ~docv:"FILE"
          ~doc:"Write the disruption metrics as CSV to FILE.")
  in
  let fig4 =
    Arg.(
      value & flag
      & info [ "fig4" ]
          ~doc:"Replay the paper's Fig. 4 oscillation instead: two APs, \
                four users, simultaneous decisions from the crossed start \
                (ignores the scenario and script options).")
  in
  let run () net load save script_file save_script gen_events duration
      objective mode jobs max_rounds no_baseline trace_file metrics_json
      metrics_csv fig4 =
    let render_trace runs =
      String.concat ""
        (List.map
           (fun (r : Harness.Metrics.run) ->
             Printf.sprintf "== %s ==\n%s" r.Harness.Metrics.label
               (Wlan_sim.Trace.to_string
                  r.Harness.Metrics.outcome.Wlan_sim.Churn.trace))
           runs)
    in
    let report runs seed =
      List.iter
        (fun (r : Harness.Metrics.run) ->
          let o = r.Harness.Metrics.outcome in
          Fmt.pr
            "%-4s %d steps: rounds %d, moves %d, reassociated %d, \
             interrupted %d%s@."
            r.Harness.Metrics.label
            (List.length o.Wlan_sim.Churn.steps)
            o.Wlan_sim.Churn.total_rounds o.Wlan_sim.Churn.total_moves
            o.Wlan_sim.Churn.total_reassociated
            o.Wlan_sim.Churn.total_interrupted
            (if o.Wlan_sim.Churn.oscillated then ", OSCILLATED" else ""))
        runs;
      Option.iter (fun f -> write_file f (render_trace runs)) trace_file;
      Option.iter
        (fun f -> write_file f (Harness.Metrics.json ~seed runs))
        metrics_json;
      Option.iter
        (fun f -> write_file f (Harness.Metrics.csv runs))
        metrics_csv
    in
    if fig4 then begin
      let p = Examples.fig4 in
      let script = Churn_script.make [] in
      let o =
        Wlan_sim.Churn.run ~init:Examples.fig4_initial ~mode:`Simultaneous
          ~max_rounds
          ~tiers:(Problem.distinct_rates p)
          ~baseline:(not no_baseline) ~objective:Distributed.Min_total_load
          ~script p
      in
      Fmt.pr "Fig. 4 replay (simultaneous decisions, crossed start):@.";
      report
        [
          {
            Harness.Metrics.label = "fig4";
            objective = "min-total-load";
            mode = "simultaneous";
            outcome = o;
          };
        ]
        net.seed
    end
    else begin
      let sc =
        match load with
        | Some path -> Scenario_io.of_file path
        | None -> scenario_of net
      in
      Option.iter (fun path -> Scenario_io.to_file path sc) save;
      let p = Scenario.to_problem sc in
      let n_aps, n_users = Problem.dims p in
      let script =
        match script_file with
        | Some f -> Scenario_io.churn_of_file f
        | None ->
            let rng = Random.State.make [| net.seed; churn_split_tag |] in
            Churn_script.random ~rng ~n_aps ~n_users
              { Churn_script.default_gen with n_events = gen_events; duration }
      in
      Option.iter (fun f -> Scenario_io.churn_to_file f script) save_script;
      let variants =
        match objective with
        | "all" ->
            [
              ("mnu", Distributed.Min_total_load);
              ("bla", Distributed.Min_load_vector);
              ("mla", Distributed.Min_total_load);
            ]
        | "mnu" -> [ ("mnu", Distributed.Min_total_load) ]
        | "mla" -> [ ("mla", Distributed.Min_total_load) ]
        | "bla" -> [ ("bla", Distributed.Min_load_vector) ]
        | other ->
            Fmt.epr "unknown objective %S (mnu, bla, mla, all)@." other;
            exit 1
      in
      let mode_v =
        match mode with
        | "sequential" -> `Sequential
        | "simultaneous" -> `Simultaneous
        | other ->
            Fmt.epr "unknown mode %S (sequential, simultaneous)@." other;
            exit 1
      in
      let obj_name = function
        | Distributed.Min_total_load -> "min-total-load"
        | Distributed.Min_load_vector -> "min-load-vector"
      in
      let runs =
        Harness.Pool.with_pool ~jobs:(Int.max 1 jobs) @@ fun pool ->
        Harness.Pool.run pool
          (List.map
             (fun (label, obj) () ->
               let o =
                 (* the scenario's full model ladder, not the library's
                    distinct-rates default: the CLI knows the deployment,
                    so drift can reach rungs the random placement left
                    unused — and it matches the serve daemon's config
                    tiers exactly *)
                 Wlan_sim.Churn.run ~mode:mode_v ~max_rounds
                   ~tiers:(Rate_model.tier_rates sc.Scenario.model)
                   ~baseline:(not no_baseline) ~objective:obj ~script p
               in
               {
                 Harness.Metrics.label;
                 objective = obj_name obj;
                 mode;
                 outcome = o;
               })
             variants)
      in
      Fmt.pr "%a@.script: %d events over %.1f s@." Scenario.pp sc
        (Churn_script.length script)
        (Churn_script.duration script);
      report runs net.seed
    end
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Replay a churn & fault-injection script against the online \
          re-association layer, with per-step disruption metrics")
    Term.(
      const run $ verbose_term $ net_term $ load $ save $ script_file
      $ save_script $ gen_events $ duration $ objective $ mode $ jobs
      $ max_rounds $ no_baseline $ trace_file $ metrics_json $ metrics_csv
      $ fig4)

(* ---------------- profile ---------------- *)

(* The profile subcommand is the only place that touches both
   observability planes: it turns the counter gate on around the
   workload and installs the wall-clock sink (DESIGN.md §4.9). The
   counter report is deterministic — byte-identical at any --jobs — and
   is what --out writes; the span tree carries wall times and is
   printed to stdout only, never into the JSON. *)

let profile_cmd =
  let ids = List.map fst Harness.Experiments.drivers in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:"Experiment drivers to profile (default: fig9a). Known: \
                fig9a..fig12c and the ablate-*/ext-* studies.")
  in
  let scenarios =
    Arg.(
      value & opt int 10
      & info [ "scenarios" ] ~doc:"Random scenarios per point.")
  in
  let seed =
    Arg.(value & opt int 2007 & info [ "seed" ] ~doc:"Master seed.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains. Counter totals are a function of the \
             submitted work only, so the report is byte-identical for \
             every value of $(docv); only the span wall times change.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the deterministic counter report as JSON to FILE.")
  in
  let scenario_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE"
          ~doc:"Profile a churn replay of this saved scenario (with \
                --script) instead of experiment drivers.")
  in
  let script_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Churn script to replay against --scenario (default: a \
                script generated from --seed).")
  in
  let no_spans =
    Arg.(
      value & flag
      & info [ "no-spans" ]
          ~doc:"Skip the wall-clock span tree (counters only).")
  in
  let run () names scenarios seed jobs out scenario_file script_file no_spans
      =
    let jobs = Int.max 1 jobs in
    if not no_spans then
      Wlan_obs.Span.set_clock
        (Some (fun () -> Int64.to_float (Monotonic_clock.now ()) /. 1e9));
    Wlan_obs.Counters.reset ();
    Wlan_obs.Span.reset ();
    Wlan_obs.Counters.set_enabled true;
    let label, targets =
      match scenario_file with
      | Some path ->
          let sc = Scenario_io.of_file path in
          let p = Scenario.to_problem sc in
          let n_aps, n_users = Problem.dims p in
          let script =
            match script_file with
            | Some f -> Scenario_io.churn_of_file f
            | None ->
                let rng = Random.State.make [| seed; churn_split_tag |] in
                Churn_script.random ~rng ~n_aps ~n_users
                  Churn_script.default_gen
          in
          let variants =
            [
              ("churn:mnu", Distributed.Min_total_load);
              ("churn:bla", Distributed.Min_load_vector);
              ("churn:mla", Distributed.Min_total_load);
            ]
          in
          let () =
            Harness.Pool.with_pool ~jobs @@ fun pool ->
            ignore
              (Harness.Pool.run pool
                 (List.map
                    (fun (label, obj) () ->
                      Wlan_obs.Span.with_span label (fun () ->
                          ignore
                            (Wlan_sim.Churn.run ~mode:`Sequential
                               ~baseline:false ~objective:obj ~script p)))
                    variants))
          in
          (Filename.basename path, List.map fst variants)
      | None ->
          let cfg =
            { Harness.Experiments.default_config with scenarios; seed; jobs }
          in
          let names = match names with [] -> [ "fig9a" ] | ns -> ns in
          List.iter
            (fun id ->
              match List.assoc_opt id Harness.Experiments.drivers with
              | Some f ->
                  Wlan_obs.Span.with_span id (fun () ->
                      ignore (f ?cfg:(Some cfg) ()))
              | None ->
                  Fmt.epr "unknown target %S (known: %a)@." id
                    Fmt.(list ~sep:sp string)
                    ids;
                  exit 1)
            names;
          ("experiments", names)
    in
    Wlan_obs.Counters.set_enabled false;
    let report = Wlan_obs.Report.make ~label ~seed ~scenarios ~targets in
    Fmt.pr "%a@." Wlan_obs.Report.pp_text report;
    if not no_spans then begin
      Fmt.pr "@.wall-clock spans (nondeterministic, not in the report):@.";
      Fmt.pr "%a@." Wlan_obs.Span.pp_tree (Wlan_obs.Span.tree ())
    end;
    Option.iter (fun f -> write_file f (Wlan_obs.Report.json report)) out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload with the observability planes on: deterministic \
          event counters (reported as versioned JSON, byte-identical at \
          any --jobs) plus a wall-clock span tree on stdout")
    Term.(
      const run $ verbose_term $ names $ scenarios $ seed $ jobs $ out
      $ scenario_file $ script_file $ no_spans)

(* ---------------- serve / replay ---------------- *)

(* The resident association-control daemon (DESIGN.md §4.13): framed
   wlan-mcast-ev events in over stdin or a Unix socket, association
   deltas and quiescence summaries out, every accepted event and
   emitted decision appended to a deterministic replay log. The replay
   subcommand re-ingests such a log and regenerates it byte-for-byte. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> In_channel.input_all ic)

let scenario_digest_of sc =
  Digest.to_hex (Digest.string (Scenario_io.to_string sc))

let serve_config sc ~obj_label ~mode ~max_rounds ~queue_limit =
  let objective =
    try Mcast_serve.Replay_log.objective_of_label obj_label
    with Invalid_argument _ ->
      Fmt.epr "unknown objective %S (mnu, bla, mla)@." obj_label;
      exit 1
  in
  let mode =
    match mode with
    | "sequential" -> `Sequential
    | "simultaneous" -> `Simultaneous
    | other ->
        Fmt.epr "unknown mode %S (sequential, simultaneous)@." other;
        exit 1
  in
  {
    Mcast_serve.Replay_log.objective;
    obj_label;
    mode;
    max_rounds;
    queue_limit;
    (* the scenario's model ladder, highest first — the same tiers the
       churn CLI passes to [Churn.run], so a Drift event means the same
       thing in the daemon and the simulator (for a Table model these
       are [Rate_table.rates], byte-identical to the historical
       sorted-rates derivation) *)
    tiers = Rate_model.tier_rates sc.Scenario.model;
    scenario_digest = Some (scenario_digest_of sc);
  }

(* Drain the decoder through the server, framing replies via [emit]. *)
let serve_drain server dec emit =
  let module P = Mcast_serve.Protocol in
  let rec go () =
    if not (Mcast_serve.Server.closed server) then
      match P.Decoder.next dec with
      | None -> ()
      | Some (P.Decoder.Frame payload) ->
          emit (Mcast_serve.Server.handle_frame server payload);
          go ()
      | Some (P.Decoder.Corrupt (code, detail)) ->
          emit [ P.Error { code; detail } ];
          go ()
  in
  go ()

let serve_over_channels server ic oc =
  let module P = Mcast_serve.Protocol in
  let dec = P.Decoder.create () in
  let emit outs =
    List.iter
      (fun o -> output_string oc (P.frame (P.render_output o)))
      outs;
    flush oc
  in
  let buf = Bytes.create 4096 in
  let rec loop () =
    if not (Mcast_serve.Server.closed server) then begin
      let n = input ic buf 0 (Bytes.length buf) in
      if n = 0 then begin
        (* end of stream: report a torn final frame, then quiesce *)
        if not (P.Decoder.at_boundary dec) then
          emit
            [
              P.Error
                {
                  code = P.Truncated;
                  detail = "stream ended inside a frame";
                };
            ];
        emit (Mcast_serve.Server.finish server)
      end
      else begin
        P.Decoder.feed dec (Bytes.sub_string buf 0 n);
        serve_drain server dec emit;
        loop ()
      end
    end
  in
  loop ()

let serve_cmd =
  let load, save = scenario_io_terms in
  let script_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Serve a canned workload: expand this churn script through \
                the event adapter and feed it to the daemon instead of \
                reading stdin.")
  in
  let save_events =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-events" ] ~docv:"FILE"
          ~doc:"With --script: write the framed event stream the daemon \
                consumed to FILE (a client could replay it verbatim).")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Write the deterministic replay log to FILE (see the \
                replay subcommand).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at PATH, serve exactly one \
                connection, then exit (default: stdin/stdout).")
  in
  let objective =
    Arg.(
      value & opt string "mnu"
      & info [ "objective"; "o" ] ~doc:"Algorithm variant: mnu, bla or mla.")
  in
  let mode =
    Arg.(
      value & opt string "sequential"
      & info [ "mode" ] ~doc:"Settle discipline: sequential or simultaneous.")
  in
  let max_rounds =
    Arg.(
      value & opt int 200
      & info [ "max-rounds" ] ~doc:"Decision-round cap per settle.")
  in
  let queue_limit =
    Arg.(
      value & opt int 256
      & info [ "queue-limit" ]
          ~doc:"Backpressure bound: a batch holding this many unsettled \
                events is settled immediately (flagged forced).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains computing the snapshot baselines in parallel. The \
             serving loop is sequential and baseline results merge in \
             submission order, so replies and the replay log are \
             byte-identical for every value of $(docv).")
  in
  let run () net load save script_file save_events log_file socket objective
      mode max_rounds queue_limit jobs =
    let sc =
      match load with
      | Some path -> Scenario_io.of_file path
      | None -> scenario_of net
    in
    Option.iter (fun path -> Scenario_io.to_file path sc) save;
    let p = Scenario.to_problem sc in
    let config =
      serve_config sc ~obj_label:objective ~mode ~max_rounds ~queue_limit
    in
    Harness.Pool.with_pool ~jobs:(Int.max 1 jobs) @@ fun pool ->
    let server =
      Mcast_serve.Server.create ~fanout:(Harness.Pool.run pool) ~config p
    in
    (match script_file with
    | Some f ->
        let script = Scenario_io.churn_of_file f in
        let frames =
          match Mcast_serve.Adapter.frames_of_script script with
          | Ok s -> s
          | Error e ->
              Fmt.epr "%s@." (Mcast_serve.Adapter.error_message e);
              exit 1
        in
        Option.iter (fun path -> write_file path frames) save_events;
        let module P = Mcast_serve.Protocol in
        let dec = P.Decoder.create () in
        let emit outs =
          List.iter
            (fun o -> output_string stdout (P.frame (P.render_output o)))
            outs
        in
        P.Decoder.feed dec frames;
        serve_drain server dec emit;
        emit (Mcast_serve.Server.finish server);
        flush stdout
    | None -> (
        match socket with
        | None -> serve_over_channels server stdin stdout
        | Some path ->
            (try Unix.unlink path with Unix.Unix_error _ -> ());
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                Unix.close fd;
                try Unix.unlink path with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.bind fd (Unix.ADDR_UNIX path);
                Unix.listen fd 1;
                let cfd, _ = Unix.accept fd in
                let ic = Unix.in_channel_of_descr cfd in
                let oc = Unix.out_channel_of_descr cfd in
                Fun.protect
                  ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
                  (fun () -> serve_over_channels server ic oc))));
    Option.iter
      (fun path -> write_file path (Mcast_serve.Server.log_contents server))
      log_file;
    let st = Mcast_serve.Server.stats server in
    Fmt.epr
      "serve: %d events in %d batches (%d forced), %d deltas out, queue \
       peak %d, %d refused; final state %s@."
      st.Mcast_serve.Server.events st.batches st.forced_settles
      st.emitted_deltas st.queue_peak st.errors
      (Mcast_serve.Server.state_digest server)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident association-control daemon: framed \
          wlan-mcast-ev events in, association deltas out, with atomic \
          same-timestamp batching, bounded-queue backpressure and a \
          deterministic replay log")
    Term.(
      const run $ verbose_term $ net_term $ load $ save $ script_file
      $ save_events $ log_file $ socket $ objective $ mode $ max_rounds
      $ queue_limit $ jobs)

let replay_cmd =
  let scenario =
    Arg.(
      required
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE"
          ~doc:"The scenario the logged session served (digest-checked \
                against the log header).")
  in
  let log_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE" ~doc:"The replay log to re-ingest.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the regenerated log to FILE.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Verify bit-identity: the input log must be a prefix of \
                the regenerated one (byte-equal when it is complete); \
                exit 1 on divergence.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Domains for the snapshot baselines, as in serve — the \
                regenerated log is byte-identical for every value.")
  in
  let run () scenario log_file out check jobs =
    let text = read_file log_file in
    let header, entries =
      try Mcast_serve.Replay_log.parse text
      with Mcast_serve.Replay_log.Parse_error msg ->
        Fmt.epr "corrupt replay log: %s@." msg;
        exit 2
    in
    let sc = Scenario_io.of_file scenario in
    (match header.Mcast_serve.Replay_log.scenario_digest with
    | Some d when d <> scenario_digest_of sc ->
        Fmt.epr
          "scenario digest mismatch: the log was recorded against a \
           different scenario@.";
        exit 2
    | _ -> ());
    let p = Scenario.to_problem sc in
    let events = Mcast_serve.Replay_log.events entries in
    Harness.Pool.with_pool ~jobs:(Int.max 1 jobs) @@ fun pool ->
    let server =
      Mcast_serve.Server.replay
        ~fanout:(Harness.Pool.run pool)
        ~config:header ~events p
    in
    let regen = Mcast_serve.Server.log_contents server in
    Option.iter (fun path -> write_file path regen) out;
    let digest = Mcast_serve.Server.state_digest server in
    if check then begin
      (* a crash can tear the final line: prefix identity is judged on
         the complete-line portion, exactly what parse replayed *)
      let complete =
        match String.rindex_opt text '\n' with
        | Some i -> String.sub text 0 (i + 1)
        | None -> ""
      in
      (* [complete] and [regen] are both prefixes of the uninterrupted
         log: [regen] falls short when the crash tore the log inside a
         settle's out-block whose triggering event was never written
         (the pending batch re-derives those lines once the trigger
         arrives). Divergence means the shorter is not a prefix of the
         longer. *)
      let n = min (String.length complete) (String.length regen) in
      if String.sub regen 0 n = String.sub complete 0 n then
        if
          String.length regen = String.length text
          && String.length complete = String.length text
        then
          Fmt.pr "replay OK: exact (%d bytes), %d events, state %s@."
            n (List.length events) digest
        else
          Fmt.pr
            "replay OK: recovered truncated log (%d bytes in, %d \
             regenerated), %d events, state %s@."
            (String.length text) (String.length regen) (List.length events)
            digest
      else begin
        Fmt.epr "replay MISMATCH: regenerated log diverges from the input@.";
        exit 1
      end
    end
    else Fmt.pr "replayed %d events, state %s@." (List.length events) digest
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-ingest a serve replay log against its scenario, regenerating \
          the decision log and final state bit-for-bit (--check verifies)")
    Term.(const run $ verbose_term $ scenario $ log_file $ out $ check $ jobs)

(* ---------------- example ---------------- *)

let example_cmd =
  let run () =
    let heavy = Examples.fig1 ~session_rate_mbps:3. in
    let light = Examples.fig1 ~session_rate_mbps:1. in
    Fmt.pr "Figure 1 at 3 Mbps (MNU regime):@.";
    List.iter
      (fun (n, f) -> Fmt.pr "  %-18s %a@." n Solution.pp (f heavy))
      [ ("ssa", Ssa.run); ("mnu", fun p -> Mnu.run p);
        ("mnu-distributed", fun p -> fst (Distributed.mnu p)) ];
    Fmt.pr "Figure 1 at 1 Mbps (BLA/MLA regime):@.";
    List.iter
      (fun (n, f) -> Fmt.pr "  %-18s %a@." n Solution.pp (f light))
      [
        ("mla", Mla.run);
        ("bla", fun p -> Bla.run_exn p);
        ("bla-distributed", fun p -> fst (Distributed.bla p));
      ]
  in
  Cmd.v
    (Cmd.info "example" ~doc:"Replay the paper's Figure 1 walk-throughs")
    Term.(const run $ const ())

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "wlan-mcast"
             ~doc:"Multicast association control for large-scale WLANs \
                   (ICDCS'07 reproduction)")
          [
            solve_cmd;
            simulate_cmd;
            analyze_cmd;
            figures_cmd;
            churn_cmd;
            serve_cmd;
            replay_cmd;
            profile_cmd;
            example_cmd;
          ]))
