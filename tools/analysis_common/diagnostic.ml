(** A single lint finding, anchored to a source location.

    [off] is the byte offset of the finding inside its file; it exists so
    that suppression spans (attribute ranges collected from the AST) can
    be intersected with findings without re-deriving positions, and so
    that output order is a total, stable order even when two findings
    share a line. *)

type t = {
  rule : string;  (** rule id, e.g. ["no-ambient-rng"] *)
  file : string;  (** path as given to the engine *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  off : int;  (** byte offset of [loc_start] within the file *)
  message : string;
}

let make ~rule ~file ~(loc : Location.t) message =
  let p = loc.loc_start in
  {
    rule;
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    off = p.pos_cnum;
    message;
  }

(** Stable output order: file, then position, then rule id. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.off b.off with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let pp_text ppf d =
  Format.fprintf ppf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.message

let to_text d = Format.asprintf "%a" pp_text d

(* Minimal JSON string escaping: we control every message, so only the
   structural characters and control bytes need care. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_json ppf d =
  Format.fprintf ppf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape d.file) d.line d.col (json_escape d.rule)
    (json_escape d.message)
