(** Reading and parsing source files, shared by both analyzers.

    wlan-lint lints the parsetree directly; wlan-race analyzes compiled
    [.cmt] typedtrees but still re-parses the corresponding [.ml] with
    this module so that suppression attributes and comment directives
    are resolved by the exact same code path in both tools. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Location.input_name := path;
  Parse.implementation lexbuf

(** Suppression spans and comment directives of one source file, ready
    for {!Suppress.filter}. [Error] when the file does not parse (the
    comment directives are still collected: they need no parsetree). *)
let suppressions ~path src =
  let directives = Suppress.comment_directives src in
  match parse_implementation ~path src with
  | str -> Ok (Suppress.allow_spans str, directives)
  | exception _ -> Error directives
