(** Suppression of findings, two ways:

    - an attribute on the offending expression (or an enclosing
      value binding): [(e) [@lint.allow float_eq]] — collected from the
      AST as byte-offset spans, one per (rule, node);
    - a source comment on the same or the preceding line:
      [(* lint: allow float-eq *)] — collected by a line scan of the raw
      source, since comments never reach the parsetree.

    Rule names may be written with ['_'] or ['-'] interchangeably, and
    the special name [all] silences every rule. *)

let normalize name = String.map (fun c -> if c = '_' then '-' else c) name

let matches ~rule token =
  let t = normalize token in
  t = "all" || t = normalize rule

(** {1 Attribute spans} *)

type span = { rules : string list; start_off : int; end_off : int }

(* Extract rule-name tokens out of an attribute payload: bare idents
   ([[@lint.allow float_eq]]), string literals, or tuples of those. *)
let rec payload_tokens (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with [ t ] -> [ t ] | _ -> [])
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_tuple es -> List.concat_map payload_tokens es
  | Pexp_apply (f, args) ->
      payload_tokens f @ List.concat_map (fun (_, a) -> payload_tokens a) args
  | _ -> []

let allow_tokens (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> payload_tokens e
        | _ -> [])
    attrs

(** Every [[@lint.allow ...]] in [str], as the span of the node it is
    attached to. *)
let allow_spans (str : Parsetree.structure) =
  let spans = ref [] in
  let add (loc : Location.t) attrs =
    match allow_tokens attrs with
    | [] -> ()
    | rules ->
        spans :=
          {
            rules;
            start_off = loc.loc_start.pos_cnum;
            end_off = loc.loc_end.pos_cnum;
          }
          :: !spans
  in
  let expr it (e : Parsetree.expression) =
    add e.pexp_loc e.pexp_attributes;
    Ast_iterator.default_iterator.expr it e
  in
  let value_binding it (vb : Parsetree.value_binding) =
    add vb.pvb_loc vb.pvb_attributes;
    Ast_iterator.default_iterator.value_binding it vb
  in
  let it = { Ast_iterator.default_iterator with expr; value_binding } in
  it.structure it str;
  !spans

(** {1 Comment directives} *)

(* A directive on line [l] silences lines [l] and [l + 1], so it can sit
   either at the end of the offending line or on its own line above. *)
type directive = { tokens : string list; line : int }

let comment_directives src =
  let directives = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      match
        let ( let* ) = Option.bind in
        let* j =
          (* find "lint:" inside a comment opener on this line *)
          let rec find k =
            if k + 5 > String.length line then None
            else if String.sub line k 5 = "lint:" then Some (k + 5)
            else find (k + 1)
          in
          find 0
        in
        let rest = String.sub line j (String.length line - j) in
        let rest =
          match String.index_opt rest '*' with
          | Some k when k + 1 < String.length rest && rest.[k + 1] = ')' ->
              String.sub rest 0 k
          | _ -> rest
        in
        Some
          (String.split_on_char ' ' rest
          |> List.concat_map (String.split_on_char ',')
          |> List.map String.trim
          |> List.filter (fun t -> t <> ""))
      with
      | Some ("allow" :: tokens) when tokens <> [] ->
          directives := { tokens; line = i + 1 } :: !directives
      | _ -> ())
    lines;
  !directives

(** {1 Filtering} *)

let allowed ~spans ~directives (d : Diagnostic.t) =
  List.exists
    (fun s ->
      s.start_off <= d.off && d.off <= s.end_off
      && List.exists (matches ~rule:d.rule) s.rules)
    spans
  || List.exists
       (fun dir ->
         (dir.line = d.line || dir.line = d.line - 1)
         && List.exists (matches ~rule:d.rule) dir.tokens)
       directives

let filter ~spans ~directives diags =
  List.filter (fun d -> not (allowed ~spans ~directives d)) diags
