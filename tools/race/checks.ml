(** The four typed rules (DESIGN.md §4.11), run over one unit's
    typedtree with the whole-tree lattice and summaries in hand.

    Task boundaries — the expressions whose argument closures execute
    on other domains — are:

    {ul
    {- applications of [Harness.Pool.run]/[Pool.submit] and
       [Domain.spawn];}
    {- applications of a parameter literally named [fanout] — the
       repo-wide convention for injectable grid/shard fan-out
       ([Scg.solve_grid], [Shard.solve]); the {e caller}-side
       [~fanout:...] argument is not a boundary (it runs on the
       submitting domain).}}

    Inside a boundary's arguments, every function literal is analyzed
    for its free variables (exact, by ident identity: a variable is free
    iff its binder lies outside the literal), and every reference to a
    known top-level value pulls that value's transitive facts from the
    summaries — the interprocedural escape: a task that calls
    [M.f] which calls [N.g] which touches a mutable global is flagged
    with the full chain. *)

open Summaries

let rule_escape = "shared-mutable-escape"
let rule_counter = "non-commutative-counter"
let rule_rng = "ambient-rng-in-task"
let rule_merge = "order-sensitive-merge"

let all_rules =
  [
    ( rule_escape,
      "no non-Atomic mutable state (local capture or module global, \
       directly or via calls) may reach a pooled task" );
    ( rule_counter,
      "pooled code may only touch Wlan_obs.Counters through the \
       commutative incr/add/record_max API" );
    ( rule_rng,
      "RNG reaching a pooled task must be a split per-task state, not \
       ambient Random or a captured shared Random.State" );
    ( rule_merge,
      "float accumulation must not run in unspecified (Hashtbl bucket) \
       or completion order; merge in submission order" );
  ]

type ctx = {
  decls : Lattice.decls;
  sums : Summaries.t;
  self : string list;  (** the unit's canonical module path *)
  source : string;
  add : Analysis_common.Diagnostic.t -> unit;
  locals : (string, string list) Hashtbl.t;
      (** unit top-level idents -> canonical key (see Summaries) *)
}

let diag ctx ~rule ~(loc : Location.t) ~(fallback : Location.t) fmt =
  let loc = if loc.loc_start.pos_cnum < 0 then fallback else loc in
  Format.kasprintf
    (fun m ->
      ctx.add (Analysis_common.Diagnostic.make ~rule ~file:ctx.source ~loc m))
    fmt

let pp_chain = function
  | [] -> ""
  | chain -> Printf.sprintf " (via %s)" (String.concat " -> " chain)

(* ------------------------------------------------------------------ *)
(* Syntactic helpers over the typedtree                                *)
(* ------------------------------------------------------------------ *)

let ident_segs (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (p, Names.canon_of_path p)
  | _ -> None

(* Canonical segments of an applied function, [None] for non-idents. *)
let applied_fn (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      match ident_segs f with
      | Some (p, segs) -> Some (p, segs, args)
      | None -> None)
  | _ -> None

let is_task_boundary (p : Path.t) segs =
  match Names.last2 segs with
  | Some ("Pool", ("run" | "submit")) -> true
  | Some ("Domain", "spawn") -> true
  | _ -> ( match p with Path.Pident id -> Ident.name id = "fanout" | _ -> false)

(* Mutator entry points: applying one of these with a free variable as
   the first unlabelled argument is a write to the capture. *)
let mutators =
  [
    ("Array", [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "stable_sort"; "fast_sort" ]);
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit" ]);
    ("Buffer", [ "add_string"; "add_char"; "add_bytes"; "add_subbytes";
                 "add_substring"; "clear"; "reset"; "truncate" ]);
    ("Queue", [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Sparse", [ "set_rate" ]);  (* the repo's CSR rate store *)
  ]

let is_mutator segs =
  match Names.last2 segs with
  | Some (m, fn) -> (
      match List.assoc_opt m mutators with
      | Some fns -> List.mem fn fns
      | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Free variables of a function literal                                *)
(* ------------------------------------------------------------------ *)

type use = {
  u_id : Ident.t;
  u_loc : Location.t;
  u_type : Types.type_expr;
}

(** [free_uses lit] — every use of an ident whose binder is outside the
    literal, plus the set of free idents written through (and whether
    any write stores a float). Exact up to aliasing: binders are
    compared by unique name. *)
let free_uses (lit : Typedtree.expression) =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let note_pat : type k. k Typedtree.general_pattern -> unit =
   fun p ->
    List.iter
      (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
      (Typedtree.pat_bound_idents p)
  in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
      =
   fun it p ->
    note_pat p;
    Tast_iterator.default_iterator.pat it p
  in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
    | Texp_function { param; _ } -> Hashtbl.replace bound (Ident.unique_name param) ()
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let collect_bound =
    { Tast_iterator.default_iterator with pat; expr }
  in
  collect_bound.expr collect_bound lit;
  let uses = ref [] in
  let writes : (string, bool * Location.t) Hashtbl.t = Hashtbl.create 8 in
  let note_write id ~float_w ~loc =
    if not (Hashtbl.mem bound (Ident.unique_name id)) then
      match Hashtbl.find_opt writes (Ident.unique_name id) with
      | Some (true, _) -> ()
      | _ -> Hashtbl.replace writes (Ident.unique_name id) (float_w, loc)
  in
  let first_unlabelled args =
    List.find_map
      (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        if not (Hashtbl.mem bound (Ident.unique_name id)) then
          uses := { u_id = id; u_loc = e.exp_loc; u_type = e.exp_type } :: !uses
    | Texp_setfield (tgt, _, _, v) -> (
        match tgt.exp_desc with
        | Texp_ident (Path.Pident id, _, _) ->
            note_write id ~float_w:(Lattice.is_float v.exp_type) ~loc:e.exp_loc
        | _ -> ())
    | Texp_apply (f, args) -> (
        match ident_segs f with
        | Some (_, [ ":=" ]) -> (
            match args with
            | (_, Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ })
              :: rest ->
                let float_w =
                  match rest with
                  | [ (_, Some rhs) ] -> Lattice.is_float rhs.exp_type
                  | _ -> false
                in
                note_write id ~float_w ~loc:e.exp_loc
            | _ -> ())
        | Some (_, segs) when is_mutator segs -> (
            match first_unlabelled args with
            | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ->
                note_write id ~float_w:false ~loc:e.exp_loc
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let collect_uses = { Tast_iterator.default_iterator with expr } in
  collect_uses.expr collect_uses lit;
  (List.rev !uses, writes)

(* ------------------------------------------------------------------ *)
(* Task-boundary analysis                                              *)
(* ------------------------------------------------------------------ *)

let report_fact ctx ~site ~loc ~prefix (f : fact) =
  match f.kind with
  | Shared_mutable kind ->
      diag ctx ~rule:rule_escape ~loc ~fallback:site
        "%s reaches shared mutable state %s (%s)%s: worker domains would \
         race on it; make it Atomic, pre-split it per task, or suppress \
         with a written disjointness argument"
        prefix f.origin kind (pp_chain f.chain)
  | Rng_state ->
      diag ctx ~rule:rule_rng ~loc ~fallback:site
        "%s reaches shared RNG state %s%s: draws depend on domain \
         interleaving; split a per-task Random.State from the master seed \
         instead"
        prefix f.origin (pp_chain f.chain)
  | Ambient_rng _ ->
      diag ctx ~rule:rule_rng ~loc ~fallback:site
        "%s taps ambient %s%s: the shared stream makes output depend on \
         which domain runs first; thread a split per-task Random.State"
        prefix f.origin (pp_chain f.chain)
  | Counter_misuse _ ->
      diag ctx ~rule:rule_counter ~loc ~fallback:site
        "%s calls %s%s, which is not one of the commutative counter \
         aggregates (incr/add/record_max): totals would depend on \
         scheduling; move it to the submitting domain"
        prefix f.origin (pp_chain f.chain)

(* Analyze one argument expression of a task boundary. *)
let check_task_arg ctx ~(site : Location.t) (arg : Typedtree.expression) =
  (* 1. transitive facts of every referenced top-level value, and direct
        references to module globals, anywhere in the argument *)
  let seen_fact = Hashtbl.create 16 in
  let fact_once key f = not (Hashtbl.mem seen_fact (key, fact_key f)) && (Hashtbl.replace seen_fact (key, fact_key f) (); true) in
  let scan_refs it (e : Typedtree.expression) =
    (match ident_segs e with
    | Some (p, segs) -> (
        let resolved_local =
          match p with
          | Path.Pident id ->
              Hashtbl.find_opt ctx.locals (Ident.unique_name id)
          | _ -> None
        in
        let segs = Option.value ~default:segs resolved_local in
        (* the counter plane is the audited exception: its API is judged
           here by name (commutative vs not) and its internals — the
           mutex-guarded registry — are deliberately not traversed *)
        if (match Names.last2 segs with Some ("Counters", _) -> true | _ -> false)
        then (
          match counter_misuse segs with
          | Some fn ->
              let f = { kind = Counter_misuse fn; origin = fn; chain = [] } in
              if fact_once "c" f then
                report_fact ctx ~site ~loc:e.exp_loc ~prefix:"pooled task" f
          | None -> ())
        else begin
          (match ambient_rng segs with
          | Some fn ->
              let f = { kind = Ambient_rng fn; origin = fn; chain = [] } in
              if fact_once "a" f then
                report_fact ctx ~site ~loc:e.exp_loc ~prefix:"pooled task" f
          | None -> ());
          (match Summaries.global_of ctx.sums segs with
          | Some (gk, g) ->
              let f =
                { kind =
                    (if g.g_rng then Rng_state else Shared_mutable g.g_kind);
                  origin = gk;
                  chain = [] }
              in
              if fact_once "g" f then
                report_fact ctx ~site ~loc:e.exp_loc
                  ~prefix:"pooled task" f
          | None -> ());
          List.iter
            (fun f ->
              if fact_once (Names.to_string segs) f then
                report_fact ctx ~site ~loc:e.exp_loc
                  ~prefix:(Printf.sprintf "pooled task calling %s"
                             (Names.to_string segs))
                  f)
            (Summaries.facts_of ctx.sums segs)
        end)
    | None -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = scan_refs } in
  it.expr it arg;
  (* 2. free-variable analysis of every outermost function literal *)
  let literals = ref [] in
  let expr it (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function _ -> literals := e :: !literals
    | _ -> Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it arg;
  List.iter
    (fun (lit : Typedtree.expression) ->
      let uses, writes = free_uses lit in
      let reported = Hashtbl.create 8 in
      List.iter
        (fun u ->
          let uname = Ident.unique_name u.u_id in
          if not (Hashtbl.mem reported uname) then begin
            Hashtbl.replace reported uname ();
            let name = Ident.name u.u_id in
            let is_local_capture = not (Hashtbl.mem ctx.locals uname) in
            (* module-level idents were handled by the reference scan *)
            if is_local_capture then begin
              let written = Hashtbl.find_opt writes uname in
              (match
                 Lattice.of_type ~self:ctx.self ~decls:ctx.decls u.u_type
               with
              | Lattice.Mut { kind; strong } ->
                  if strong || written <> None then
                    diag ctx ~rule:rule_escape ~loc:u.u_loc ~fallback:site
                      "pooled task captures enclosing %s '%s'%s: worker \
                       domains would share unsynchronised mutable state; \
                       use Atomic, pre-split per task, or suppress with a \
                       written disjointness argument"
                      kind name
                      (if written <> None then " and writes to it" else "")
              | Lattice.Rng _ ->
                  diag ctx ~rule:rule_rng ~loc:u.u_loc ~fallback:site
                    "pooled task captures shared Random.State '%s': draws \
                     depend on domain interleaving; split a per-task state \
                     from the master seed"
                    name
              | Lattice.Immutable | Lattice.Safe -> ());
              match written with
              | Some (true, wloc) ->
                  diag ctx ~rule:rule_merge ~loc:wloc ~fallback:site
                    "pooled task accumulates a float into captured '%s': \
                     merge order becomes completion order; return the \
                     partial and fold over Pool.run's submission-order \
                     results instead"
                    name
              | _ -> ()
            end
          end)
        uses)
    !literals

(* ------------------------------------------------------------------ *)
(* Whole-unit check                                                    *)
(* ------------------------------------------------------------------ *)

let unordered_float_merge ctx (e : Typedtree.expression) =
  match applied_fn e with
  | Some (_, segs, args) -> (
      match Names.last2 segs with
      | Some ("Hashtbl", "fold") when Lattice.is_float e.exp_type ->
          diag ctx ~rule:rule_merge ~loc:e.exp_loc ~fallback:e.exp_loc
            "Hashtbl.fold accumulates a float in unspecified bucket order: \
             summation order (and thus the result bits) depends on \
             insertion history; sort the bindings and fold the sorted list"
      | Some (("List" | "Array" | "Seq"), "fold_left")
        when Lattice.is_float e.exp_type ->
          (* flag only when the folded data demonstrably comes out of a
             Hashtbl in bucket order *)
          let from_hashtbl = ref false in
          let expr it (a : Typedtree.expression) =
            (match ident_segs a with
            | Some (_, segs) -> (
                match Names.last2 segs with
                | Some ("Hashtbl", ("fold" | "to_seq" | "to_seq_keys" | "to_seq_values")) ->
                    from_hashtbl := true
                | _ -> ())
            | None -> ());
            Tast_iterator.default_iterator.expr it a
          in
          let it = { Tast_iterator.default_iterator with expr } in
          List.iter (fun (_, a) -> Option.iter (it.expr it) a) args;
          if !from_hashtbl then
            diag ctx ~rule:rule_merge ~loc:e.exp_loc ~fallback:e.exp_loc
              "float fold over Hashtbl-ordered data: summation runs in \
               unspecified bucket order; sort before folding"
      | _ -> ())
  | None -> ()

let check_unit ~decls ~sums (u : Loader.unit_info) =
  let diags = ref [] in
  let ctx =
    {
      decls;
      sums;
      self = u.modname;
      source = u.source;
      add = (fun d -> diags := d :: !diags);
      locals = Summaries.unit_locals u;
    }
  in
  let expr it (e : Typedtree.expression) =
    unordered_float_merge ctx e;
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
        match ident_segs f with
        | Some (p, segs) when is_task_boundary p segs ->
            List.iter
              (fun ((_ : Asttypes.arg_label), a) ->
                Option.iter (check_task_arg ctx ~site:e.exp_loc) a)
              args
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it u.str;
  !diags
