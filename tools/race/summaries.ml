(** Cross-module value summaries and the interprocedural fixpoint.

    For every top-level (and nested-module) binding of every loaded
    unit we record:

    {ul
    {- {e globals}: non-function bindings whose type sits in the
       mutable region of the lattice — the module-level shared state a
       pooled task must not reach;}
    {- {e summaries}: for function bindings, the set of other top-level
       values the body references, plus the {e direct facts} the body
       exhibits (ambient RNG taps, non-commutative counter-plane
       calls).}}

    The fixpoint then propagates facts along the reference edges:
    [facts f = direct f ∪ {global g | g ∈ refs f} ∪ ⋃ {facts h | h ∈
    refs f}], keeping the shortest call chain per distinct fact for the
    diagnostics. Referencing an already-computed {e value} does not
    re-run its definition, so only function-typed bindings propagate —
    a counter cell created at module init does not drag the registry
    Hashtbl into every instrumented hot path. *)

type fact_kind =
  | Shared_mutable of string  (** kind text from the lattice *)
  | Rng_state
  | Ambient_rng of string  (** offending function, e.g. Random.int *)
  | Counter_misuse of string  (** non-commutative Counters entry point *)

type fact = {
  kind : fact_kind;
  origin : string;  (** canonical name of the global / offending call *)
  chain : string list;  (** call chain from the task boundary, outermost first *)
}

(* Distinct facts are keyed by (kind constructor, origin); the chain is
   payload, shortest wins. *)
let fact_key f =
  (match f.kind with
   | Shared_mutable _ -> "g"
   | Rng_state -> "r"
   | Ambient_rng _ -> "a"
   | Counter_misuse _ -> "c")
  ^ ":" ^ f.origin

type global = { g_kind : string; g_rng : bool }

type summary = { refs : string list list;  (** canonical referenced paths *)
                 direct : fact list }

type t = {
  globals : global Names.Table.t;
  summaries : summary Names.Table.t;
  mutable resolved : (string, fact list) Hashtbl.t option;
}

(* ------------------------------------------------------------------ *)
(* Pattern matching on canonical paths                                 *)
(* ------------------------------------------------------------------ *)

let commutative_counter_fns = [ "incr"; "add"; "record_max"; "name"; "enabled" ]

(** Counter-plane entry points that are not commutative aggregates:
    calling any of these from pooled code makes the result (or the
    registry) depend on scheduling. [make] mutates the shared registry;
    [value]/[snapshot] observe in-flight totals; [reset]/[set_enabled]
    are global control flips. *)
let counter_misuse segs =
  match Names.last2 segs with
  | Some ("Counters", fn) when not (List.mem fn commutative_counter_fns) ->
      Some (Names.to_string segs)
  | _ -> None

(** Ambient RNG: any direct [Random.*] member (the split [Random.State]
    API is exempt, except for [make_self_init], which taps the outside
    world). *)
let ambient_rng segs =
  match List.rev segs with
  | fn :: "Random" :: _ -> Some ("Random." ^ fn)
  | "make_self_init" :: "State" :: "Random" :: _ ->
      Some "Random.State.make_self_init"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

(* All canonical paths referenced from an expression: Pdot paths as
   written, plus Pident references resolved through [locals] (the
   enclosing unit's top-level bindings, keyed by ident unique name). *)
let scan_body ~locals (e : Typedtree.expression) =
  let refs = ref [] and direct = ref [] in
  let add_ref segs = if segs <> [] then refs := segs :: !refs in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> (
        let segs = Names.canon_of_path path in
        (match path with
        | Path.Pident id -> (
            match Hashtbl.find_opt locals (Ident.unique_name id) with
            | Some key -> add_ref key
            | None -> ())
        | _ -> add_ref segs);
        (match ambient_rng segs with
        | Some fn ->
            direct := { kind = Ambient_rng fn; origin = fn; chain = [] } :: !direct
        | None -> ());
        match counter_misuse segs with
        | Some fn ->
            direct :=
              { kind = Counter_misuse fn; origin = fn; chain = [] } :: !direct
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  (!refs, !direct)

(* The single ident a top-level binding defines. A type-constrained
   binding ([let store : t = ...]) does not elaborate to a bare
   [Tpat_var], so match the alias shape too; the pattern's own type
   carries the constraint. *)
let binder_of_pat (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias (_, id, _) -> Some id
  | _ -> None

let is_function_type ty =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tpoly (t, _) -> (
      match Types.get_desc t with Tarrow _ -> true | _ -> false)
  | _ -> false

(** One unit's top-level idents, so intra-module references (which are
    [Pident]s) resolve to their canonical keys. *)
let unit_locals (u : Loader.unit_info) =
  let locals = Hashtbl.create 64 in
  let rec walk_items path_rev items =
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match binder_of_pat vb.vb_pat with
                | Some id ->
                    Hashtbl.replace locals
                      (Ident.unique_name id)
                      (List.rev (Ident.name id :: path_rev))
                | None -> ())
              vbs
        | Tstr_module mb -> walk_module path_rev mb
        | Tstr_recmodule mbs -> List.iter (walk_module path_rev) mbs
        | Tstr_include incl -> (
            match incl.incl_mod.mod_desc with
            | Tmod_structure str -> walk_items path_rev str.str_items
            | _ -> ())
        | _ -> ())
      items
  and walk_module path_rev (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
        let rec strip (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_constraint (me, _, _, _) -> strip me
          | d -> d
        in
        match strip mb.mb_expr with
        | Tmod_structure str ->
            walk_items (Ident.name id :: path_rev) str.str_items
        | _ -> ())
  in
  walk_items (List.rev u.modname) u.str.str_items;
  locals

let collect_unit ~decls t (u : Loader.unit_info) =
  let locals = unit_locals u in
  let rec walk_items path_rev items =
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match binder_of_pat vb.vb_pat with
                | Some id -> (
                    let key = List.rev (Ident.name id :: path_rev) in
                    let ty = vb.vb_pat.pat_type in
                    if is_function_type ty then begin
                      let refs, direct = scan_body ~locals vb.vb_expr in
                      Names.Table.add t.summaries key { refs; direct }
                    end
                    else
                      match
                        Lattice.of_type ~self:(List.rev path_rev) ~decls ty
                      with
                      | Lattice.Mut { kind; _ } ->
                          Names.Table.add t.globals key
                            { g_kind = kind; g_rng = false }
                      | Lattice.Rng _ ->
                          Names.Table.add t.globals key
                            { g_kind = "Random.State"; g_rng = true }
                      | Lattice.Immutable | Lattice.Safe -> ())
                | _ -> ())
              vbs
        | Tstr_module mb -> walk_module path_rev mb
        | Tstr_recmodule mbs -> List.iter (walk_module path_rev) mbs
        | Tstr_include incl -> (
            match incl.incl_mod.mod_desc with
            | Tmod_structure str -> walk_items path_rev str.str_items
            | _ -> ())
        | _ -> ())
      items
  and walk_module path_rev (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
        let rec strip (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_constraint (me, _, _, _) -> strip me
          | d -> d
        in
        match strip mb.mb_expr with
        | Tmod_structure str ->
            walk_items (Ident.name id :: path_rev) str.str_items
        | _ -> ())
  in
  walk_items (List.rev u.modname) u.str.str_items

let collect ~decls units =
  let t =
    { globals = Names.Table.create ();
      summaries = Names.Table.create ();
      resolved = None }
  in
  List.iter (collect_unit ~decls t) units;
  t

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

let merge_facts into fs =
  List.fold_left
    (fun (acc, changed) f ->
      let k = fact_key f in
      match List.assoc_opt k acc with
      | Some old when List.length old.chain <= List.length f.chain ->
          (acc, changed)
      | _ -> ((k, f) :: List.remove_assoc k acc, true))
    (into, false) fs

(* An edge of the reference graph, pre-resolved so the fixpoint loop is
   a plain union over stable keys. *)
type edge =
  | To_global of string * global  (** full key of the referenced global *)
  | To_fn of string  (** full key of the referenced summary *)

let resolve t =
  match t.resolved with
  | Some r -> r
  | None ->
      let edges : (string, edge list) Hashtbl.t = Hashtbl.create 256 in
      let state : (string, (string * fact) list) Hashtbl.t =
        Hashtbl.create 256
      in
      Names.Table.iter
        (fun key (s : summary) ->
          let es =
            List.filter_map
              (fun r ->
                match Names.Table.find_key t.globals r with
                | Some (gk, g) -> Some (To_global (gk, g))
                | None -> (
                    match Names.Table.find_key t.summaries r with
                    | Some (fk, _) when fk <> key -> Some (To_fn fk)
                    | _ -> None))
              s.refs
            |> List.sort_uniq compare
          in
          Hashtbl.replace edges key es;
          Hashtbl.replace state key
            (fst
               (merge_facts []
                  (List.map (fun f -> { f with chain = [] }) s.direct))))
        t.summaries;
      let changed = ref true and rounds = ref 0 in
      while !changed && !rounds < 100 do
        changed := false;
        incr rounds;
        Hashtbl.iter
          (fun key es ->
            let cur = Hashtbl.find state key in
            let incoming =
              List.concat_map
                (function
                  | To_global (gk, g) ->
                      [ { kind =
                            (if g.g_rng then Rng_state
                             else Shared_mutable g.g_kind);
                          origin = gk;
                          chain = [] } ]
                  | To_fn fk ->
                      List.map
                        (fun (_, f) -> { f with chain = fk :: f.chain })
                        (Hashtbl.find state fk))
                es
            in
            let merged, did = merge_facts cur incoming in
            if did then begin
              Hashtbl.replace state key merged;
              changed := true
            end)
          edges
      done;
      let out = Hashtbl.create 256 in
      Hashtbl.iter (fun k fs -> Hashtbl.replace out k (List.map snd fs)) state;
      t.resolved <- Some out;
      out

(** Transitive facts of the value a task references, or [[]]. *)
let facts_of t segs =
  let resolved = resolve t in
  match Names.Table.find_key t.summaries segs with
  | None -> []
  | Some (key, _) ->
      Option.value ~default:[] (Hashtbl.find_opt resolved key)

let global_of t segs = Names.Table.find_key t.globals segs
