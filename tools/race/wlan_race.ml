(* wlan-race: typed cross-module domain-safety & determinism analyzer.

   Loads every .cmt under the given roots (default: lib bin bench
   examples — inside _build/default when invoked from the repository
   root), builds the whole-tree mutability lattice and interprocedural
   summaries, and checks the four rules of Wlan_race_kernel.Checks.
   Exit status: 0 clean, 1 findings, 2 load or usage errors.

   The .cmt files are only as fresh as the last `dune build`; run
   through the `@race` alias (which depends on @default) unless you
   know the build is current. See tools/race/README.md. *)

open Wlan_race_kernel
open Analysis_common

let usage =
  "wlan-race [options] [root ...]\n\
   Typed domain-safety/determinism checks over compiled .cmt typedtrees\n\
   (DESIGN.md §4.11). Roots are source directories; default: lib bin\n\
   bench examples."

let () =
  let format = ref `Text in
  let enabled = ref [] in
  let disabled = ref [] in
  let paths = ref [] in
  let list_rules = ref false in
  let quiet = ref false in
  let build_dir = ref None in
  let spec =
    [
      ( "--format",
        Arg.Symbol
          ( [ "text"; "json" ],
            fun s -> format := if s = "json" then `Json else `Text ),
        " output format (default text)" );
      ( "--rule",
        Arg.String (fun r -> enabled := r :: !enabled),
        "<id> run only this rule (repeatable)" );
      ( "--disable",
        Arg.String (fun r -> disabled := r :: !disabled),
        "<id> skip this rule (repeatable)" );
      ( "--build-dir",
        Arg.String (fun d -> build_dir := Some d),
        "<dir> prefix roots with this build context (default: \
         _build/default when it exists, else none)" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
      ("--quiet", Arg.Set quiet, " suppress the trailing summary line");
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (id, doc) -> Printf.printf "%-24s %s\n" id doc)
      Checks.all_rules;
    exit 0
  end;
  let bad_id id =
    Printf.eprintf "wlan-race: unknown rule %S (try --list-rules)\n" id;
    exit 2
  in
  List.iter
    (fun id -> if Engine.find_rule id = None then bad_id id)
    (!enabled @ !disabled);
  let rules =
    Engine.rule_ids
    |> List.filter (fun id ->
           (!enabled = [] || List.mem id !enabled)
           && not (List.mem id !disabled))
  in
  let roots = if !paths = [] then Engine.default_roots else List.rev !paths in
  let res = Engine.run ~rules ?prefix:!build_dir roots in
  (match !format with
  | `Text ->
      List.iter (fun d -> print_endline (Diagnostic.to_text d)) res.diagnostics;
      List.iter
        (fun (e : Engine.error) ->
          Printf.printf "%s: load error\n%s\n" e.file e.message)
        res.errors;
      if not !quiet then
        Printf.printf
          "wlan-race: %d unit(s), %d finding(s), %d load error(s)\n" res.units
          (List.length res.diagnostics)
          (List.length res.errors)
  | `Json ->
      print_string "[";
      List.iteri
        (fun i d ->
          if i > 0 then print_string ",";
          print_string (Format.asprintf "%a" Diagnostic.pp_json d))
        res.diagnostics;
      print_endline "]");
  if res.errors <> [] then exit 2
  else if res.diagnostics <> [] then exit 1
  else exit 0
