(** Canonical dotted names across the dune name-mangling boundary.

    The same value is reachable under several spellings depending on
    where the reference sits: [Harness.Pool.run] from outside the
    library, [Pool.run] resolved through dune's generated alias module
    ([Harness__.Pool.run]) from a sibling, or the mangled persistent
    name [Harness__Pool.run]. All of them canonicalize to the segment
    list [["Harness"; "Pool"; "run"]]: every dotted segment is split on
    ["__"] (dropping the empty piece a trailing ["__"] leaves behind)
    and [Stdlib] prefixes are erased. Matching between use sites and
    definitions is exact first, unique-suffix second (see
    {!suffix_matches}) — a deliberate heuristic, documented in
    DESIGN.md §4.11. *)

let split_mangled seg =
  (* "Harness__Pool" -> ["Harness"; "Pool"]; "Harness__" -> ["Harness"] *)
  let parts = ref [] and buf = Buffer.create (String.length seg) in
  let n = String.length seg in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && seg.[!i] = '_' && seg.[!i + 1] = '_' then begin
      if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf seg.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
  List.rev !parts

(* Dune mangles with a lowercased library prefix in file names but the
   module name proper is capitalized; normalize first letters so both
   spellings meet. *)
let capitalize = String.capitalize_ascii

let segments_of_string name =
  String.split_on_char '.' name
  |> List.concat_map split_mangled
  |> List.filter (fun s -> s <> "Stdlib" && s <> "")
  |> List.map capitalize

let segments_of_path p = segments_of_string (Path.name p)

(* Value/type segments keep their case (only module segments are
   capitalized by dune); recover by lowering nothing — instead keep the
   original last segment. *)
let canon_of_path p =
  let raw =
    String.split_on_char '.' (Path.name p)
    |> List.concat_map split_mangled
    |> List.filter (fun s -> s <> "Stdlib" && s <> "")
  in
  match List.rev raw with
  | [] -> []
  | last :: rev_mods -> List.rev_map capitalize rev_mods @ [ last ]

let to_string segs = String.concat "." segs

(** [last2 segs] — the "Module.value" suffix used for API pattern
    matching ([Pool.run], [Counters.incr], ...). *)
let last2 segs =
  match List.rev segs with
  | v :: m :: _ -> Some (m, v)
  | _ -> None

let is_suffix ~suffix l =
  let ls = List.length suffix and ll = List.length l in
  ls <= ll
  &&
  let rec drop n = function x when n = 0 -> x | _ :: t -> drop (n - 1) t | [] -> [] in
  drop (ll - ls) l = suffix

(** A table of definitions keyed by canonical segment lists, resolved
    exactly or — when the use site's path is shorter (a reference from
    inside the defining library or through a local module alias) — by
    unique suffix. *)
module Table = struct
  type 'a t = {
    exact : (string, 'a) Hashtbl.t;
    by_suffix : (string, string list) Hashtbl.t;
        (** "M.v" (last2) -> full keys having that suffix *)
  }

  let create () = { exact = Hashtbl.create 256; by_suffix = Hashtbl.create 256 }

  let add t segs v =
    let key = to_string segs in
    Hashtbl.replace t.exact key v;
    match last2 segs with
    | None -> ()
    | Some (m, x) ->
        let sk = m ^ "." ^ x in
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_suffix sk) in
        if not (List.mem key prev) then
          Hashtbl.replace t.by_suffix sk (key :: prev)

  (** Resolve a use-site path: exact key match, else the unique
      definition whose canonical key ends with the same "M.v" suffix
      and of which the use path is itself a suffix. Returns the
      definition's full key alongside the value. *)
  let find_key t segs =
    let key = to_string segs in
    match Hashtbl.find_opt t.exact key with
    | Some v -> Some (key, v)
    | None -> (
        match last2 segs with
        | None -> None
        | Some (m, x) -> (
            match Hashtbl.find_opt t.by_suffix (m ^ "." ^ x) with
            | Some [ key ] ->
                let def = String.split_on_char '.' key in
                if is_suffix ~suffix:segs def then
                  Option.map (fun v -> (key, v)) (Hashtbl.find_opt t.exact key)
                else None
            | _ -> None))

  let find t segs = Option.map snd (find_key t segs)
  let iter f t = Hashtbl.iter f t.exact
end
