(** The mutability lattice (DESIGN.md §4.11).

    Every type is classified by what sharing it across pool domains can
    do to determinism:

    {ul
    {- [Immutable] — structurally constant, free to share;}
    {- [Safe] — mutable by design but synchronised and commutative
       ([Atomic.t], [Mutex.t], the counter plane's cells);}
    {- [Rng of _] — a [Random.State.t]: mutable {e and} order-sensitive,
       handled by the [ambient-rng-in-task] rule rather than the escape
       rule;}
    {- [Mut of {kind; strong}] — unsynchronised mutable state. [strong]
       marks pointer-style mutability (refs, [Hashtbl], [Buffer],
       [Bytes], [Queue], [Stack], [Lazy], records with [mutable]
       fields): capturing one in a pooled task is flagged outright.
       Weak mutability (reached only through [array] planes, e.g. a CSR
       [Sparse.t]) is flagged only when the task syntactically writes
       to the capture or the value is a module global — read-only
       sharing of numeric planes is this repo's standard idiom and is
       defended by the differential test batteries.}}

    User-defined types are classified from the typedtrees themselves: a
    first pass over {e all} loaded [.cmt] units records every record,
    variant and abbreviation declaration (keyed by canonical name,
    nested modules included), so cross-module record mutability — e.g.
    [Wlan_model.Sparse.t]'s rate store — is seen without any [Env]
    reconstruction. Unknown abstract types default to [Immutable]; the
    qcheck differential batteries remain the backstop for what the
    lattice cannot see. *)

type verdict =
  | Immutable
  | Safe
  | Rng of string
  | Mut of { kind : string; strong : bool }

let join a b =
  match (a, b) with
  | (Mut _ as m), Mut { strong = false; _ } | Mut { strong = false; _ }, (Mut _ as m)
    -> m
  | (Mut _ as m), _ | _, (Mut _ as m) -> m
  | (Rng _ as r), _ | _, (Rng _ as r) -> r
  | Safe, _ | _, Safe -> Safe
  | Immutable, Immutable -> Immutable

let join_all = List.fold_left join Immutable

(* ------------------------------------------------------------------ *)
(* Declaration collection                                              *)
(* ------------------------------------------------------------------ *)

type decl =
  | Record of (bool * Types.type_expr) list  (** (field is [mutable], type) *)
  | Variant of Types.type_expr list  (** all constructor argument types *)
  | Abbrev of Types.type_expr

type decls = decl Names.Table.t

(* Walk one unit's structure, tracking the module path so nested
   declarations get fully-qualified canonical keys. *)
let collect_unit (decls : decls) (u : Loader.unit_info) =
  let add_decl path_rev (td : Typedtree.type_declaration) =
    let key = List.rev (td.typ_name.txt :: path_rev) in
    let record_fields lds =
      List.map
        (fun (ld : Typedtree.label_declaration) ->
          (ld.ld_mutable = Asttypes.Mutable, ld.ld_type.ctyp_type))
        lds
    in
    match td.typ_kind with
    | Ttype_record lds -> Names.Table.add decls key (Record (record_fields lds))
    | Ttype_variant cds ->
        let args =
          List.concat_map
            (fun (cd : Typedtree.constructor_declaration) ->
              match cd.cd_args with
              | Cstr_tuple cts ->
                  List.map (fun (ct : Typedtree.core_type) -> ct.ctyp_type) cts
              | Cstr_record lds ->
                  (* inline records: mutable flags matter; encode as a
                     synthetic record under the same key suffixed by the
                     constructor so lookups through the variant join it *)
                  List.map (fun (ld : Typedtree.label_declaration) ->
                      ld.ld_type.ctyp_type)
                    (List.filter
                       (fun (ld : Typedtree.label_declaration) ->
                         ld.ld_mutable = Asttypes.Immutable)
                       lds))
            cds
        in
        let has_mutable_inline =
          List.exists
            (fun (cd : Typedtree.constructor_declaration) ->
              match cd.cd_args with
              | Cstr_record lds ->
                  List.exists
                    (fun (ld : Typedtree.label_declaration) ->
                      ld.ld_mutable = Asttypes.Mutable)
                    lds
              | Cstr_tuple _ -> false)
            cds
        in
        if has_mutable_inline then
          Names.Table.add decls key
            (Record [ (true, (match args with t :: _ -> t | [] -> Predef.type_int)) ])
        else Names.Table.add decls key (Variant args)
    | Ttype_abstract | Ttype_open -> (
        match td.typ_manifest with
        | Some ct -> Names.Table.add decls key (Abbrev ct.ctyp_type)
        | None -> ())
  in
  let rec walk_items path_rev items =
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.str_desc with
        | Tstr_type (_, tds) -> List.iter (add_decl path_rev) tds
        | Tstr_module mb -> walk_module path_rev mb
        | Tstr_recmodule mbs -> List.iter (walk_module path_rev) mbs
        | Tstr_include incl -> (
            match incl.incl_mod.mod_desc with
            | Tmod_structure str -> walk_items path_rev str.str_items
            | _ -> ())
        | _ -> ())
      items
  and walk_module path_rev (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id ->
        let rec strip (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_constraint (me, _, _, _) -> strip me
          | me_desc -> me_desc
        in
        (match strip mb.mb_expr with
        | Tmod_structure str ->
            walk_items (Ident.name id :: path_rev) str.str_items
        | _ -> ())
  in
  walk_items (List.rev u.modname) u.str.str_items

let collect units =
  let decls : decls = Names.Table.create () in
  List.iter (collect_unit decls) units;
  decls

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

(* Built-in classification by canonical name. Only the last one or two
   segments matter for stdlib types. *)
let strong_builtins =
  [
    ([ "ref" ], "ref cell");
    ([ "Hashtbl"; "t" ], "Hashtbl");
    ([ "Buffer"; "t" ], "Buffer");
    ([ "bytes" ], "bytes");
    ([ "Bytes"; "t" ], "bytes");
    ([ "Queue"; "t" ], "Queue");
    ([ "Stack"; "t" ], "Stack");
    ([ "Dynarray"; "t" ], "Dynarray");
    ([ "Weak"; "t" ], "weak array");
    ([ "lazy_t" ], "lazy (forcing races)");
    ([ "Lazy"; "t" ], "lazy (forcing races)");
    ([ "in_channel" ], "channel");
    ([ "out_channel" ], "channel");
  ]

let weak_builtins = [ ([ "array" ], "array"); ([ "floatarray" ], "float array") ]

let safe_suffixes =
  [
    [ "Atomic"; "t" ]; [ "Mutex"; "t" ]; [ "Condition"; "t" ];
    [ "Semaphore"; "Counting"; "t" ]; [ "Semaphore"; "Binary"; "t" ];
  ]

let transparent =
  [ [ "list" ]; [ "option" ]; [ "result" ]; [ "Seq"; "t" ]; [ "Either"; "t" ] ]

let rng_suffixes = [ [ "Random"; "State"; "t" ] ]

let ends_with ~suffix segs = Names.is_suffix ~suffix segs

(* [self] is the module path of the scope the type expression was
   written in: a bare [Tconstr] like [t] or [batch] (a [Pident], so no
   "M.t" suffix to match) resolves by prepending it. When recursing
   into a found declaration's fields, [self] becomes that declaration's
   own module path, derived from its full key. *)
let rec verdict ?(depth = 0) ~self ~(decls : decls) visiting
    (ty : Types.type_expr) =
  if depth > 14 then Immutable
  else
    let eval = verdict ~depth:(depth + 1) ~self ~decls visiting in
    match Types.get_desc ty with
    | Ttuple ts -> join_all (List.map eval ts)
    | Tarrow _ -> Immutable (* closures judged at their own capture sites *)
    | Tpoly (t, _) -> eval t
    | Tconstr (p, args, _) -> (
        let segs = Names.canon_of_path p in
        if List.exists (fun s -> ends_with ~suffix:s segs) safe_suffixes then Safe
        else if List.exists (fun s -> ends_with ~suffix:s segs) rng_suffixes then
          Rng (Names.to_string segs)
        else
          match
            List.find_opt (fun (s, _) -> ends_with ~suffix:s segs) strong_builtins
          with
          | Some (_, kind) -> Mut { kind; strong = true }
          | None -> (
              match
                List.find_opt (fun (s, _) -> ends_with ~suffix:s segs) weak_builtins
              with
              | Some (_, kind) -> Mut { kind; strong = false }
              | None ->
                  if List.exists (fun s -> s = segs) transparent then
                    join_all (List.map eval args)
                  else
                    let found =
                      match Names.Table.find_key decls segs with
                      | Some _ as r -> r
                      | None when self <> [] ->
                          Names.Table.find_key decls (self @ segs)
                      | None -> None
                    in
                    match found with
                    | None -> Immutable (* unknown abstract type *)
                    | Some (key, d) ->
                        if List.mem key !visiting then Immutable
                        else begin
                          visiting := key :: !visiting;
                          let v = decl_verdict ~depth ~decls visiting key d in
                          visiting := List.filter (( <> ) key) !visiting;
                          v
                        end))
    | _ -> Immutable

and decl_verdict ~depth ~decls visiting key d =
  (* recurse with the declaration's own module path as [self] so its
     fields' bare type names resolve in the right scope *)
  let self =
    match List.rev (String.split_on_char '.' key) with
    | _ :: rev_mods -> List.rev rev_mods
    | [] -> []
  in
  match d with
  | Abbrev t -> verdict ~depth:(depth + 1) ~self ~decls visiting t
  | Variant args ->
      join_all (List.map (verdict ~depth:(depth + 1) ~self ~decls visiting) args)
  | Record fields ->
      if List.exists fst fields then
        Mut { kind = Printf.sprintf "record %s with mutable field(s)" key;
              strong = true }
      else
        join_all
          (List.map
             (fun (_, t) -> verdict ~depth:(depth + 1) ~self ~decls visiting t)
             fields)

let of_type ?(self = []) ~decls ty = verdict ~self ~decls (ref []) ty

let is_float ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Names.canon_of_path p = [ "float" ]
  | _ -> false
