(* Golden + property tests for wlan-race.

   The fixture corpus (tools/race/fixtures) is a real dune library —
   the analyzer reads its .cmt typedtrees, so the test depends on the
   fixtures' @default alias and loads the compiled artifacts from
   ../fixtures. Each racy fixture must reproduce its .expected
   diagnostics byte for byte and trigger *only* its own rule; the clean
   fixtures must be silent; the suppressed fixture must be racy before
   the shared suppression filter and silent after it; and the
   suppression language must round-trip for every rule id of both tools
   (wlan-lint and wlan-race), in both spellings and both escape-hatch
   forms. *)

open Wlan_race_kernel
open Analysis_common

let fixture_root = "../fixtures"

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One engine run over the corpus, shared by all tests. *)
let result = lazy (Engine.run [ fixture_root ])

(* Raw (pre-suppression) diagnostics, straight from the checks — used
   to prove the escape hatches in suppressed.ml are load-bearing. *)
let raw = lazy (
  let units, errors = Loader.load [ fixture_root ] in
  assert (errors = []);
  let decls = Lattice.collect units in
  let sums = Summaries.collect ~decls units in
  List.concat_map
    (fun u ->
      Checks.check_unit ~decls ~sums u |> List.sort_uniq Diagnostic.compare)
    units)

let diags_for basename =
  List.filter
    (fun (d : Diagnostic.t) -> Filename.basename d.file = basename)
    (Lazy.force result).diagnostics

let fixtures =
  [
    "mutstore.ml"; "racy_shared_escape.ml"; "racy_counter.ml"; "racy_rng.ml";
    "racy_merge.ml"; "clean_tasks.ml"; "suppressed.ml";
  ]

let test_golden base () =
  let expected =
    read (Filename.concat fixture_root (Filename.remove_extension base ^ ".expected"))
  in
  let rendered =
    match List.map Diagnostic.to_text (diags_for base) with
    | [] -> ""
    | lines -> String.concat "\n" lines ^ "\n"
  in
  Alcotest.(check string) (base ^ " diagnostics") expected rendered

let test_no_load_errors () =
  let r = Lazy.force result in
  Alcotest.(check int) "load errors" 0 (List.length r.errors);
  Alcotest.(check bool) "several units loaded" true (r.units >= List.length fixtures)

(* The acceptance bar: each of the four rules has a fixture that
   triggers it. *)
let test_every_rule_fires () =
  let fired =
    List.map (fun (d : Diagnostic.t) -> d.rule) (Lazy.force result).diagnostics
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s fires on the corpus" id)
        true (List.mem id fired))
    Checks.all_rules

(* Each racy fixture is a pure specimen of one rule. *)
let test_exactly_its_rule () =
  List.iter
    (fun (base, rule) ->
      let rules =
        List.map (fun (d : Diagnostic.t) -> d.rule) (diags_for base)
        |> List.sort_uniq String.compare
      in
      Alcotest.(check (list string)) (base ^ " rules") [ rule ] rules)
    [
      ("racy_shared_escape.ml", Checks.rule_escape);
      ("racy_counter.ml", Checks.rule_counter);
      ("racy_rng.ml", Checks.rule_rng);
      ("racy_merge.ml", Checks.rule_merge);
    ]

let test_clean_fixtures_silent () =
  List.iter
    (fun base ->
      Alcotest.(check int) (base ^ " findings") 0 (List.length (diags_for base)))
    [ "mutstore.ml"; "clean_tasks.ml"; "suppressed.ml" ]

(* suppressed.ml is genuinely racy — four findings before the filter,
   none after — so the hatches, not analyzer blindness, silence it. *)
let test_suppression_is_load_bearing () =
  let before =
    List.filter
      (fun (d : Diagnostic.t) -> Filename.basename d.file = "suppressed.ml")
      (Lazy.force raw)
  in
  Alcotest.(check int) "raw findings in suppressed.ml" 4 (List.length before);
  let rules = List.sort_uniq String.compare (List.map (fun (d : Diagnostic.t) -> d.rule) before) in
  Alcotest.(check (list string)) "all four rules represented"
    (List.sort String.compare
       [ Checks.rule_escape; Checks.rule_counter; Checks.rule_rng;
         Checks.rule_merge ])
    rules

(* Rule filtering: running with a single rule enabled yields exactly
   that rule's findings. *)
let test_rule_filter () =
  let r = Engine.run ~rules:[ Checks.rule_rng ] [ fixture_root ] in
  Alcotest.(check (list string)) "only rng findings" [ Checks.rule_rng ]
    (List.sort_uniq String.compare
       (List.map (fun (d : Diagnostic.t) -> d.rule) r.diagnostics));
  Alcotest.(check bool) "rng findings present" true (r.diagnostics <> [])

(* ------------------------------------------------------------------ *)
(* Suppression round-trip (shared language, both tools)                 *)
(* ------------------------------------------------------------------ *)

let all_rule_ids =
  List.map (fun (r : Wlan_lint_kernel.Rules.t) -> r.id) Wlan_lint_kernel.Rules.all
  @ List.map fst Checks.all_rules

(* A diagnostic pinned to line 2 (col 0) of a two-line source. *)
let diag_at ~rule ~line ~off =
  { Diagnostic.rule; file = "round_trip.ml"; line; col = 0; off; message = "m" }

let spellings id =
  [ Suppress.normalize id; String.map (fun c -> if c = '-' then '_' else c) id ]

(* Comment form: a directive line suppresses the same and the next
   line, for every rule id of both registries, in both spellings, both
   as its own name and as "all". *)
let round_trip_comment =
  QCheck.Test.make ~count:200 ~name:"comment directive round-trips"
    QCheck.(
      make
        Gen.(
          let* id = oneofl all_rule_ids in
          let* tok = oneofl (spellings id @ [ "all" ]) in
          let* own_line = bool in
          return (id, tok, own_line)))
    (fun (id, tok, own_line) ->
      let src =
        if own_line then Printf.sprintf "(* lint: allow %s *)\nlet x = 1\n" tok
        else Printf.sprintf "let x = 1 (* lint: allow %s *)\nlet y = 2\n" tok
      in
      let directives = Suppress.comment_directives src in
      let line = if own_line then 2 else 1 in
      let hit = diag_at ~rule:id ~line ~off:25 in
      let miss = diag_at ~rule:id ~line:(line + 2) ~off:25 in
      Suppress.filter ~spans:[] ~directives [ hit ] = []
      && Suppress.filter ~spans:[] ~directives [ miss ] = [ miss ])

(* Attribute form: an [@lint.allow ...] span suppresses a diagnostic
   whose offset falls inside the attributed expression, through the
   same Source parser both engines call. *)
let round_trip_attribute =
  QCheck.Test.make ~count:200 ~name:"attribute span round-trips"
    QCheck.(
      make
        Gen.(
          let* id = oneofl all_rule_ids in
          let* quoted = bool in
          (* a bare (unquoted) payload must be a lexable ident, so the
             dashed spelling is only reachable through a string literal *)
          let* tok =
            if quoted then oneofl (spellings id)
            else return (String.map (fun c -> if c = '-' then '_' else c) id)
          in
          return (id, tok, quoted)))
    (fun (id, tok, quoted) ->
      let payload = if quoted then Printf.sprintf "%S" tok else tok in
      let src = Printf.sprintf "let x = (1 + 1) [@lint.allow %s]\n" payload in
      match Source.parse_implementation ~path:"round_trip.ml" src with
      | exception e ->
          QCheck.Test.fail_reportf "does not parse: %s" (Printexc.to_string e)
      | str ->
          let spans = Suppress.allow_spans str in
          let inside = diag_at ~rule:id ~line:1 ~off:9 in
          let outside = diag_at ~rule:id ~line:1 ~off:1 in
          let other =
            diag_at ~rule:"definitely-not-a-rule" ~line:1 ~off:9
          in
          Suppress.filter ~spans ~directives:[] [ inside ] = []
          && Suppress.filter ~spans ~directives:[] [ outside ] = [ outside ]
          && Suppress.filter ~spans ~directives:[] [ other ] = [ other ])

let () =
  Alcotest.run "wlan-race"
    [
      ( "goldens",
        List.map
          (fun base -> Alcotest.test_case base `Quick (test_golden base))
          fixtures );
      ( "engine",
        [
          Alcotest.test_case "no load errors" `Quick test_no_load_errors;
          Alcotest.test_case "every rule fires" `Quick test_every_rule_fires;
          Alcotest.test_case "exactly its rule" `Quick test_exactly_its_rule;
          Alcotest.test_case "clean fixtures silent" `Quick
            test_clean_fixtures_silent;
          Alcotest.test_case "suppression is load-bearing" `Quick
            test_suppression_is_load_bearing;
          Alcotest.test_case "rule filter" `Quick test_rule_filter;
        ] );
      ( "suppression",
        List.map QCheck_alcotest.to_alcotest
          [ round_trip_comment; round_trip_attribute ] );
    ]
