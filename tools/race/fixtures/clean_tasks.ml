(* Negative fixture: idiomatic pooled code every rule must accept —
   pure closures over immutable data, read-only sharing of a numeric
   plane, a per-task split RNG, the commutative counter API, and a
   sorted (deterministic) float merge. *)

let evals = Wlan_obs.Counters.make "race_fixture.evals"

let pure pool xs = Harness.Pool.run pool (List.map (fun x () -> x * x) xs)

let readonly_plane pool (plane : float array) idxs =
  Harness.Pool.run pool (List.map (fun i () -> plane.(i) *. 2.) idxs)

let split_rng pool seeds =
  Harness.Pool.run pool
    (List.map
       (fun seed () ->
         let st = Random.State.make [| seed |] in
         Random.State.int st 1000)
       seeds)

let counted pool xs =
  Harness.Pool.run pool
    (List.map
       (fun x () ->
         Wlan_obs.Counters.incr evals;
         x + 1)
       xs)

let sorted_total (tbl : (int, float) Hashtbl.t) =
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.fold_left (fun acc (_, v) -> acc +. v) 0. (List.sort compare bindings)

let merge_in_submission_order pool xs =
  List.fold_left ( +. ) 0.
    (Harness.Pool.run pool (List.map (fun x () -> float_of_int x) xs))
