(* Cross-module half of the interprocedural fixture: a module-global
   mutable store behind an innocent-looking function. A pooled task that
   calls [bump] — in another compilation unit — must be flagged with the
   chain through this summary. *)

let store : (int, int) Hashtbl.t = Hashtbl.create 16

let bump k =
  Hashtbl.replace store k (1 + Option.value ~default:0 (Hashtbl.find_opt store k))
