(* Positive fixture for order-sensitive-merge: float accumulation in
   Hashtbl bucket order, directly and through a fold over a Hashtbl
   sequence. *)

let direct_fold (tbl : (int, float) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.

let seq_fold (tbl : (int, float) Hashtbl.t) =
  List.fold_left ( +. ) 0. (List.of_seq (Seq.map snd (Hashtbl.to_seq tbl)))
