(* Positive fixture for shared-mutable-escape: every capture path the
   rule covers — strong local capture, written weak (array) capture,
   module-global reach, and the cross-module interprocedural chain
   through Mutstore.bump. *)

let tallies : (int, int) Hashtbl.t = Hashtbl.create 8

let local_capture pool xs =
  let acc = Hashtbl.create 8 in
  Harness.Pool.run pool (List.map (fun x () -> Hashtbl.replace acc x (x * x)) xs)

let global_reach pool xs =
  Harness.Pool.run pool (List.map (fun x () -> Hashtbl.replace tallies x x) xs)

let via_call pool xs =
  Harness.Pool.run pool (List.map (fun x () -> Mutstore.bump x) xs)

let written_plane pool (plane : float array) =
  Harness.Pool.run pool [ (fun () -> plane.(0) <- plane.(0) +. 1.) ]
