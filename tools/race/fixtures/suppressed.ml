(* Suppression fixture: the same racy shapes as the positive fixtures,
   each silenced through one of the two escape hatches the analyzer
   shares with wlan-lint. Must produce zero findings — this is the
   end-to-end proof that the race engine re-parses sources through
   Analysis_common.Suppress. *)

let totals : (int, float) Hashtbl.t = Hashtbl.create 8

let comment_hatch pool xs =
  (* lint: allow shared-mutable-escape *)
  Harness.Pool.run pool (List.map (fun x () -> Hashtbl.replace totals x 0.) xs)

let same_line_hatch (tbl : (int, float) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0. (* lint: allow order-sensitive-merge *)

let attribute_hatch pool n =
  (Harness.Pool.run pool [ (fun () -> Random.int n) ] [@lint.allow ambient_rng_in_task])

let underscore_spelling pool =
  (* lint: allow non_commutative_counter *)
  Harness.Pool.run pool [ (fun () -> Wlan_obs.Counters.reset ()) ]
