(* Positive fixture for non-commutative-counter: pooled code touching
   the counter plane outside the commutative incr/add/record_max API. *)

let hits = Wlan_obs.Counters.make "race_fixture.hits"

let observe_in_task pool =
  Harness.Pool.run pool [ (fun () -> Wlan_obs.Counters.value hits) ]

let reset_in_task pool xs =
  Harness.Pool.run pool
    (List.map (fun x () -> if x = 0 then Wlan_obs.Counters.reset ()) xs)
