(* Positive fixture for ambient-rng-in-task: tapping the global Random
   stream inside a pooled task, seeding from the outside world, and
   capturing one shared Random.State across tasks. *)

let ambient pool n =
  Harness.Pool.run pool [ (fun () -> Random.int n) ]

let self_seeded pool =
  Harness.Pool.run pool [ (fun () -> Random.State.make_self_init ()) ]

let shared_state pool n =
  let st = Random.State.make [| 42 |] in
  Harness.Pool.run pool
    [ (fun () -> Random.State.int st n); (fun () -> Random.State.int st n) ]
