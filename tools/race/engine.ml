(** Orchestration: load [.cmt] units, build the lattice and summaries
    over the {e whole} tree, run the per-unit checks, then filter
    through the shared suppression machinery by re-parsing each
    source file with [Analysis_common.Source] — the same attribute and
    comment parser wlan-lint uses, so one escape-hatch language serves
    both tools. *)

open Analysis_common

type error = { file : string; message : string }

type result = {
  units : int;
  diagnostics : Diagnostic.t list;
  errors : error list;
}

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let rule_ids = List.map fst Checks.all_rules
let find_rule id = List.find_opt (( = ) id) rule_ids

(* Suppression state of one source file, cached across the (typically
   several) diagnostics pointing into it. *)
let suppressions_for source_on_disk source =
  match source_on_disk with
  | None -> ([], [])
  | Some path -> (
      match Source.read_file path with
      | exception _ -> ([], [])
      | src -> (
          match Source.suppressions ~path:source src with
          | Ok (spans, directives) -> (spans, directives)
          | Error directives -> ([], directives)))

let run ?(rules = rule_ids) ?prefix roots =
  let units, load_errors = Loader.load ?prefix roots in
  let decls = Lattice.collect units in
  let sums = Summaries.collect ~decls units in
  let diagnostics =
    List.concat_map
      (fun (u : Loader.unit_info) ->
        let diags =
          Checks.check_unit ~decls ~sums u
          |> List.filter (fun (d : Diagnostic.t) -> List.mem d.rule rules)
          (* several capture paths can land on one (rule, site) pair;
             report each once *)
          |> List.sort_uniq Diagnostic.compare
        in
        match diags with
        | [] -> []
        | diags ->
            let spans, directives =
              suppressions_for u.source_on_disk u.source
            in
            Suppress.filter ~spans ~directives diags)
      units
  in
  {
    units = List.length units;
    diagnostics = List.sort Diagnostic.compare diagnostics;
    errors =
      List.map
        (fun (e : Loader.error) -> { file = e.file; message = e.message })
        load_errors;
  }
