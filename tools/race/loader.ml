(** Discovery and loading of [.cmt] typedtrees.

    Roots are source directories ([lib bin bench examples]); their
    compiled annotations live under dune's hidden [.<lib>.objs/byte]
    directories, so — unlike the source-walking linter — the walk
    descends into dot-directories. The build-order contract
    (tools/race/README.md): [.cmt] files are only as fresh as the last
    [dune build], which is why the [@race] alias depends on [@default].

    When invoked from the repository root (e.g. [dune exec
    tools/race/wlan_race.exe]) the walker transparently prefixes
    [_build/default]; when invoked from inside the build context (the
    [@race] alias) the roots are used as-is. *)

type unit_info = {
  modname : string list;  (** canonical module segments, e.g. [Harness; Pool] *)
  source : string;  (** source path as compiled, e.g. lib/harness/pool.ml *)
  source_on_disk : string option;  (** resolved readable copy, if any *)
  str : Typedtree.structure;
}

type error = { file : string; message : string }

(** [_build/default] prefix when running outside the build context. *)
let build_prefix () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default" then
    Some "_build/default"
  else None

let discover ?prefix roots =
  let prefix = match prefix with Some p -> p | None -> Option.value ~default:"" (build_prefix ()) in
  let in_build r = if prefix = "" then r else Filename.concat prefix r in
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry -> walk (Filename.concat path entry))
    else if Filename.check_suffix path ".cmt" then acc := path :: !acc
  in
  List.iter (fun r -> let r = in_build r in if Sys.file_exists r then walk r) roots;
  List.rev !acc

(* The recorded path is relative to dune's build context, so it only
   resolves when the analyzer happens to run from the repository root
   (where dune keeps a source copy at the same relative path) or from
   the context itself. The third candidate derives the copy next to the
   .cmt: dune lays artifacts out at <dir>/.<lib>.objs/byte/M.cmt with
   the compiled source at <dir>/<base>, whatever the cwd. *)
let resolve_source ~builddir ~cmt_path source =
  let beside_cmt =
    Filename.concat
      (Filename.dirname (Filename.dirname (Filename.dirname cmt_path)))
      (Filename.basename source)
  in
  let candidates =
    [ source; Filename.concat builddir source; beside_cmt ]
  in
  List.find_opt Sys.file_exists candidates

let read_unit path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      Error { file = path; message = Printexc.to_string exn }
  | infos -> (
      match infos.cmt_annots with
      | Implementation str ->
          let source =
            Option.value ~default:(Filename.basename path) infos.cmt_sourcefile
          in
          Ok
            (Some
               {
                 modname = Names.segments_of_string infos.cmt_modname;
                 source;
                 source_on_disk =
                   resolve_source ~builddir:infos.cmt_builddir ~cmt_path:path
                     source;
                 str;
               })
      | _ -> Ok None (* interfaces, partial implementations: nothing to scan *))

(** Load every implementation unit under [roots]; deterministic order
    (sorted by source path). Units that fail to load are reported, not
    fatal: a stale or version-skewed [.cmt] must name itself. *)
let load ?prefix roots =
  let units, errors =
    List.fold_left
      (fun (us, es) path ->
        match read_unit path with
        | Ok (Some u) -> (u :: us, es)
        | Ok None -> (us, es)
        | Error e -> (us, e :: es))
      ([], []) (discover ?prefix roots)
  in
  ( List.sort (fun a b -> compare (a.source, a.modname) (b.source, b.modname)) units,
    List.rev errors )
