(** The repo-specific invariant rules (DESIGN.md §4.6).

    Every rule is a purely syntactic pass over one file's parsetree —
    no typing environment is needed, which keeps the linter fast and
    dependency-free, at the price of being a heuristic: each rule
    documents exactly what it matches so false positives can be judged
    (and silenced with [[@lint.allow ...]]) consciously. *)

open Parsetree
open Analysis_common

type ctx = {
  path : string;  (** path as reported in diagnostics *)
  in_lib : bool;  (** path has a [lib] component: library hygiene applies *)
  print_exempt : bool;  (** the designated reporting modules may print *)
}

type t = {
  id : string;
  doc : string;
  check : ctx -> structure -> Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Shared syntactic helpers                                            *)
(* ------------------------------------------------------------------ *)

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

(* The dotted path of an identifier expression, [Stdlib.] prefix erased,
   or [None] for anything that is not a plain identifier. *)
let ident_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (Longident.flatten txt))
  | _ -> None

let diag ctx ~rule ~loc fmt =
  Format.kasprintf (fun m -> Diagnostic.make ~rule ~file:ctx.path ~loc m) fmt

(* Does [e] contain a list cons constructor anywhere? Used to recognise
   fold bodies that build lists. *)
let contains_cons e =
  let found = ref false in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* Does [e] contain [r := ... :: ...] — a list accumulated through a
   captured ref? *)
let contains_ref_cons e =
  let found = ref false in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply (f, [ _; (_, rhs) ]) when ident_path f = Some [ ":=" ] ->
        if contains_cons rhs then found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let is_function_literal (e : expression) =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* R1: no-ambient-rng                                                  *)
(* ------------------------------------------------------------------ *)

(* Any direct member of [Random] (Random.int, Random.float,
   Random.self_init, Random.get_state, ...) taps or perturbs the ambient
   stream; only the split-state [Random.State] API is deterministic
   under the Harness.Pool domain fan-out. [Random.State.*] flattens to a
   three-segment path and is therefore never matched here. *)
let no_ambient_rng =
  let check ctx str =
    let diags = ref [] in
    let expr it (e : expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
          match strip_stdlib (Longident.flatten txt) with
          | [ "Random"; fn ] ->
              diags :=
                diag ctx ~rule:"no-ambient-rng" ~loc
                  "ambient Random.%s taps the shared RNG stream and breaks \
                   byte-identical output across --jobs values; draw from a \
                   split Random.State (see Scenario_gen.scenario_rng)"
                  fn
                :: !diags
          | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str;
    !diags
  in
  {
    id = "no-ambient-rng";
    doc =
      "forbid Random.int/float/... outside Random.State (determinism under \
       --jobs N)";
    check;
  }

(* ------------------------------------------------------------------ *)
(* R2: float-eq                                                        *)
(* ------------------------------------------------------------------ *)

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let float_unops = [ "~-."; "~+." ]
let float_binops = [ "+."; "-."; "*."; "/."; "**" ]

let float_fns =
  [
    "float_of_int"; "float_of_string"; "sqrt"; "exp"; "expm1"; "log"; "log10";
    "log1p"; "ceil"; "floor"; "abs_float"; "mod_float"; "copysign"; "atan";
    "atan2"; "cos"; "sin"; "tan"; "acos"; "asin"; "cosh"; "sinh"; "tanh";
    "hypot"; "ldexp";
  ]

let float_module_fns =
  [
    "of_int"; "of_string"; "abs"; "neg"; "add"; "sub"; "mul"; "div"; "pow";
    "fma"; "rem"; "sqrt"; "cbrt"; "exp"; "log"; "max"; "min"; "max_num";
    "min_num"; "round"; "trunc"; "succ"; "pred";
  ]

(* Is [e] syntactically a float? Literals, the named float constants,
   float arithmetic, well-known float-returning calls, an explicit
   [(... : float)] constraint — and conditionals whose branches are. *)
let rec is_floaty (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match strip_stdlib (Longident.flatten txt) with
      | [ c ] -> List.mem c float_consts
      | [ "Float"; c ] ->
          List.mem c
            [ "infinity"; "neg_infinity"; "nan"; "pi"; "epsilon"; "max_float";
              "min_float" ]
      | _ -> false)
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some [ op ] when List.mem op float_binops || List.mem op float_unops ->
          true
      | Some [ fn ] when List.mem fn float_fns -> true
      | Some [ "Float"; fn ] when List.mem fn float_module_fns -> true
      | _ -> (
          (* [(-.) x] style sections still apply the float operator *)
          match args with _ -> false))
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
      Longident.flatten txt = [ "float" ]
  | Pexp_ifthenelse (_, th, Some el) -> is_floaty th && is_floaty el
  | Pexp_ifthenelse (_, th, None) -> is_floaty th
  | Pexp_sequence (_, e) | Pexp_open (_, e) | Pexp_letmodule (_, _, e) ->
      is_floaty e
  | Pexp_let (_, _, body) -> is_floaty body
  | _ -> false

let structural_cmp_ops = [ "="; "<>"; "=="; "!="; "compare" ]

let float_eq =
  let check ctx str =
    let diags = ref [] in
    let expr it (e : expression) =
      (match e.pexp_desc with
      | Pexp_apply (f, [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ]) -> (
          match ident_path f with
          | Some [ op ]
            when List.mem op structural_cmp_ops && (is_floaty a || is_floaty b)
            ->
              diags :=
                diag ctx ~rule:"float-eq" ~loc:e.pexp_loc
                  "structural %s on float operands is exact: summation-order \
                   noise can flip it and destabilise distributed decisions; \
                   compare through an epsilon-tolerant helper (e.g. \
                   Loads.compare_load_vectors_eps, Float.abs (a -. b) <= eps) \
                   or annotate [@lint.allow float_eq] if exactness is the \
                   point"
                  (if op = "compare" then "compare" else "(" ^ op ^ ")")
                :: !diags
          | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str;
    !diags
  in
  {
    id = "float-eq";
    doc =
      "structural =/<>/compare on syntactically-float operands must use the \
       epsilon helpers";
    check;
  }

(* ------------------------------------------------------------------ *)
(* R3: unordered-fold                                                  *)
(* ------------------------------------------------------------------ *)

let sort_fns = [ "sort"; "stable_sort"; "fast_sort"; "sort_uniq" ]

(* Scope unit: one top-level structure item (one [let] group). A list
   built by [Hashtbl.fold]/[Hashtbl.iter] inside it is fine as long as a
   [List.sort]-family call occurs at or after the fold within the same
   item — the `|> List.sort` pipeline idiom — otherwise the unspecified
   bucket order leaks out and run-to-run determinism is gone. *)
let unordered_fold =
  let check ctx str =
    let diags = ref [] in
    let scan_item (si : structure_item) =
      let folds = ref [] and sort_offs = ref [] in
      let expr it (e : expression) =
        (match e.pexp_desc with
        | Pexp_apply (f, args) -> (
            let fn_args = List.map snd args in
            match ident_path f with
            | Some [ "Hashtbl"; "fold" ]
              when List.exists
                     (fun a -> is_function_literal a && contains_cons a)
                     fn_args ->
                folds := (e.pexp_loc, "Hashtbl.fold") :: !folds
            | Some [ "Hashtbl"; "iter" ]
              when List.exists
                     (fun a -> is_function_literal a && contains_ref_cons a)
                     fn_args ->
                folds := (e.pexp_loc, "Hashtbl.iter") :: !folds
            | Some [ "List"; fn ] when List.mem fn sort_fns ->
                sort_offs := e.pexp_loc.loc_start.pos_cnum :: !sort_offs
            | _ -> ())
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      in
      let it = { Ast_iterator.default_iterator with expr } in
      it.structure_item it si;
      List.iter
        (fun ((loc : Location.t), what) ->
          let off = loc.loc_start.pos_cnum in
          if not (List.exists (fun s -> s >= off) !sort_offs) then
            diags :=
              diag ctx ~rule:"unordered-fold" ~loc
                "%s builds a list in unspecified bucket order and no \
                 List.sort follows in this definition; sort before the \
                 result escapes, or the output differs between runs"
                what
              :: !diags)
        !folds
    in
    List.iter scan_item str;
    !diags
  in
  {
    id = "unordered-fold";
    doc =
      "Hashtbl.fold/iter building an escaping list must be followed by a \
       List.sort in the same definition";
    check;
  }

(* ------------------------------------------------------------------ *)
(* R4: pool-capture                                                    *)
(* ------------------------------------------------------------------ *)

let mutable_makers =
  [
    ([ "ref" ], "ref cell");
    ([ "Hashtbl"; "create" ], "Hashtbl");
    ([ "Buffer"; "create" ], "Buffer");
    ([ "Queue"; "create" ], "Queue");
    ([ "Stack"; "create" ], "Stack");
    ([ "Array"; "make" ], "array");
    ([ "Array"; "init" ], "array");
    ([ "Array"; "create_float" ], "array");
    ([ "Bytes"; "create" ], "bytes");
    ([ "Bytes"; "make" ], "bytes");
  ]

let rec strip_constraint (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

(* Closures shipped to [Pool.run]/[Pool.map] execute on arbitrary worker
   domains: any shared mutable state they capture is an unsynchronised
   data race and an ordering leak. We collect the mutable [let]s of the
   surrounding structure item, then flag their occurrences inside
   function literals located anywhere in a Pool call's arguments.
   [Atomic.make] bindings are deliberately not collected. *)
let pool_capture =
  let check ctx str =
    let diags = ref [] in
    let scan_item (si : structure_item) =
      let mutables = Hashtbl.create 8 in
      let vb _it (vb : value_binding) =
        (match (vb.pvb_pat.ppat_desc, strip_constraint vb.pvb_expr) with
        | Ppat_var { txt = name; _ }, { pexp_desc = Pexp_apply (f, _); _ } -> (
            match ident_path f with
            | Some p -> (
                match List.assoc_opt p mutable_makers with
                | Some kind -> Hashtbl.replace mutables name kind
                | None -> ())
            | None -> ())
        | _ -> ());
        Ast_iterator.default_iterator.value_binding _it vb
      in
      let collect =
        { Ast_iterator.default_iterator with value_binding = vb }
      in
      collect.structure_item collect si;
      if Hashtbl.length mutables > 0 then begin
        let scan_pool_arg ~what arg =
          let depth = ref 0 in
          let expr it (e : expression) =
            match e.pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
                incr depth;
                Ast_iterator.default_iterator.expr it e;
                decr depth
            | Pexp_ident { txt = Longident.Lident n; loc }
              when !depth > 0 && Hashtbl.mem mutables n ->
                diags :=
                  diag ctx ~rule:"pool-capture" ~loc
                    "closure passed to %s captures the enclosing %s \
                     '%s': worker domains would share unsynchronised \
                     mutable state; pre-split the data per job or use \
                     Atomic"
                    what (Hashtbl.find mutables n) n
                  :: !diags
            | _ -> Ast_iterator.default_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with expr } in
          it.expr it arg
        in
        let expr it (e : expression) =
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match ident_path f with
              | Some p -> (
                  match List.rev p with
                  | fn :: "Pool" :: _ when fn = "run" || fn = "map" ->
                      List.iter
                        (fun (_, a) -> scan_pool_arg ~what:"Pool.run/map" a)
                        args
                  (* the B* grid fan-out: a [~fanout] given to
                     [Scg.solve_grid]/[Scg.solve]/[Bla.run]/[Bla.run_exn]
                     typically wraps [Pool.run], so its closures run the
                     grid thunks on worker domains too *)
                  | fn :: m :: _
                    when (m = "Scg" && (fn = "solve_grid" || fn = "solve"))
                         || (m = "Bla" && (fn = "run" || fn = "run_exn")) ->
                      List.iter
                        (fun ((lbl : Asttypes.arg_label), a) ->
                          match lbl with
                          | Labelled "fanout" | Optional "fanout" ->
                              scan_pool_arg
                                ~what:
                                  (Printf.sprintf "the ~fanout of %s.%s" m fn)
                                a
                          | _ -> ())
                        args
                  | _ -> ())
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e
        in
        let it = { Ast_iterator.default_iterator with expr } in
        it.structure_item it si
      end
    in
    List.iter scan_item str;
    !diags
  in
  {
    id = "pool-capture";
    doc =
      "closures given to Pool.run/Pool.map must not capture enclosing \
       non-Atomic mutable state";
    check;
  }

(* ------------------------------------------------------------------ *)
(* R5: lib-hygiene                                                     *)
(* ------------------------------------------------------------------ *)

let print_fns =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_char" ]; [ "print_int" ]; [ "print_float" ]; [ "print_bytes" ];
    [ "Printf"; "printf" ]; [ "Format"; "printf" ]; [ "Format"; "print_string" ];
    [ "Fmt"; "pr" ];
  ]

let lib_hygiene =
  let check ctx str =
    if not ctx.in_lib then []
    else begin
      let diags = ref [] in
      let expr it (e : expression) =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            let p = strip_stdlib (Longident.flatten txt) in
            if p = [ "Obj"; "magic" ] then
              diags :=
                diag ctx ~rule:"lib-hygiene" ~loc
                  "Obj.magic defeats the type system; no library code may \
                   use it"
                :: !diags
            else if (not ctx.print_exempt) && List.mem p print_fns then
              diags :=
                diag ctx ~rule:"lib-hygiene" ~loc
                  "%s prints to stdout from library code; route output \
                   through Logs or the Harness.Report/Sim.Trace formatters"
                  (String.concat "." p)
                :: !diags)
        | Pexp_apply (f, _) -> (
            match ident_path f with
            | Some [ "exit" ] ->
                diags :=
                  diag ctx ~rule:"lib-hygiene" ~loc:f.pexp_loc
                    "library code must not call exit; raise and let the \
                     binary decide"
                  :: !diags
            | _ -> ())
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      in
      let it = { Ast_iterator.default_iterator with expr } in
      it.structure it str;
      !diags
    end
  in
  {
    id = "lib-hygiene";
    doc =
      "lib/ may not print to stdout (outside Harness.Report/Sim.Trace), use \
       Obj.magic, or call exit";
    check;
  }

(* ------------------------------------------------------------------ *)
(* R6: arena-escape                                                    *)
(* ------------------------------------------------------------------ *)

(* Is [e] a buffer acquisition — an application of [Arena.floats] or
   [Arena.ints] (under any module prefix)? *)
let is_arena_acquire (e : expression) =
  match (strip_constraint e).pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some p -> (
          match List.rev p with
          | fn :: "Arena" :: _ -> fn = "floats" || fn = "ints"
          | _ -> false)
      | None -> false)
  | _ -> false

(* The result positions of [e]: follow let/sequence/open/if/match down
   to the expressions whose value the whole body evaluates to. *)
let rec result_exprs (e : expression) acc =
  match e.pexp_desc with
  | Pexp_let (_, _, b)
  | Pexp_sequence (_, b)
  | Pexp_open (_, b)
  | Pexp_letmodule (_, _, b)
  | Pexp_constraint (b, _) ->
      result_exprs b acc
  | Pexp_ifthenelse (_, th, el) -> (
      let acc = result_exprs th acc in
      match el with Some e -> result_exprs e acc | None -> acc)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.fold_left (fun acc (c : case) -> result_exprs c.pc_rhs acc) acc cases
  | _ -> e :: acc

(* Arena storage is scratch: [with_arena] reuses it for the next caller,
   so nothing acquired from the arena (nor the arena itself) may outlive
   the call, and an arena must never be shared across [Harness.Pool]
   worker domains (it is not synchronised). Two syntactic checks:

   - the result positions of a function literal given to
     [Arena.with_arena] must not be the arena parameter, a name bound to
     [Arena.floats]/[Arena.ints] inside the body, a direct acquisition,
     or a tuple/constructor/record immediately wrapping one of those;
   - closures located in [Pool.run]/[Pool.map] arguments or in any
     [~fanout] argument must not mention an enclosing name bound to
     [Arena.create]/[Arena.floats]/[Arena.ints] (or a [with_arena]
     parameter). Names re-bound inside the shipped expression are
     exempt: a task-local arena created inside the closure is exactly
     the recommended pattern. *)
let arena_escape =
  let check ctx str =
    let diags = ref [] in
    let escape_msg = function
      | Some (kind, name) ->
          Printf.sprintf
            "the %s '%s' escapes in with_arena's result: arena storage is \
             reused scratch that the next arena user overwrites; copy into a \
             fresh array before returning"
            kind name
      | None ->
          "an arena buffer acquired here escapes in with_arena's result: \
           arena storage is reused scratch that the next arena user \
           overwrites; copy into a fresh array before returning"
    in
    let scan_with_arena_body fnlit =
      (* the function literal's parameters are the arena itself *)
      let rec unwrap (e : expression) params =
        match e.pexp_desc with
        | Pexp_fun (_, _, pat, body) ->
            let params =
              match pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt :: params
              | _ -> params
            in
            unwrap body params
        | _ -> (e, params)
      in
      let body, params = unwrap fnlit [] in
      let acquired = Hashtbl.create 4 in
      List.iter (fun p -> Hashtbl.replace acquired p "arena") params;
      let vb it (vb : value_binding) =
        (match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt = name; _ } when is_arena_acquire vb.pvb_expr ->
            Hashtbl.replace acquired name "arena buffer"
        | _ -> ());
        Ast_iterator.default_iterator.value_binding it vb
      in
      let collect = { Ast_iterator.default_iterator with value_binding = vb } in
      collect.expr collect body;
      let leaf (t : expression) =
        let t = strip_constraint t in
        if is_arena_acquire t then Some (t.pexp_loc, None)
        else
          match t.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; loc } -> (
              match Hashtbl.find_opt acquired n with
              | Some kind -> Some (loc, Some (kind, n))
              | None -> None)
          | _ -> None
      in
      let flag t =
        match leaf t with
        | Some (loc, who) ->
            diags :=
              diag ctx ~rule:"arena-escape" ~loc "%s" (escape_msg who) :: !diags
        | None -> ()
      in
      let check_result (t : expression) =
        let t = strip_constraint t in
        match leaf t with
        | Some _ -> flag t
        | None -> (
            (* one wrapping layer: (x, buf), Some buf, { f = buf } *)
            match t.pexp_desc with
            | Pexp_tuple es -> List.iter flag es
            | Pexp_construct (_, Some arg) -> (
                match (strip_constraint arg).pexp_desc with
                | Pexp_tuple es -> List.iter flag es
                | _ -> flag arg)
            | Pexp_record (fields, _) -> List.iter (fun (_, e) -> flag e) fields
            | _ -> ())
      in
      List.iter check_result (result_exprs body [])
    in
    (* Per structure item: arena bindings captured by pooled closures. *)
    let scan_item (si : structure_item) =
      let arenas = Hashtbl.create 4 in
      let vb it (vb : value_binding) =
        (match (vb.pvb_pat.ppat_desc, strip_constraint vb.pvb_expr) with
        | Ppat_var { txt = name; _ }, rhs -> (
            match rhs.pexp_desc with
            | Pexp_apply (f, _) -> (
                match ident_path f with
                | Some p -> (
                    match List.rev p with
                    | "create" :: "Arena" :: _ ->
                        Hashtbl.replace arenas name "arena"
                    | fn :: "Arena" :: _ when fn = "floats" || fn = "ints" ->
                        Hashtbl.replace arenas name "arena buffer"
                    | _ -> ())
                | None -> ())
            | _ -> ())
        | _ -> ());
        Ast_iterator.default_iterator.value_binding it vb
      in
      let cexpr it (e : expression) =
        (match e.pexp_desc with
        | Pexp_apply (f, args) -> (
            match ident_path f with
            | Some p
              when (match List.rev p with
                   | "with_arena" :: "Arena" :: _ -> true
                   | _ -> false) ->
                List.iter
                  (fun (_, a) ->
                    match a.pexp_desc with
                    | Pexp_fun (_, _, { ppat_desc = Ppat_var { txt; _ }; _ }, _)
                      ->
                        Hashtbl.replace arenas txt "arena"
                    | _ -> ())
                  args
            | _ -> ())
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      in
      let collect =
        { Ast_iterator.default_iterator with value_binding = vb; expr = cexpr }
      in
      collect.structure_item collect si;
      if Hashtbl.length arenas > 0 then begin
        let scan_pool_arg ~what arg =
          (* names re-bound inside the shipped expression shadow the
             outer arena (task-local arenas): exempt *)
          let locals = Hashtbl.create 4 in
          let pat it (p : pattern) =
            (match p.ppat_desc with
            | Ppat_var { txt; _ } when Hashtbl.mem arenas txt ->
                Hashtbl.replace locals txt ()
            | _ -> ());
            Ast_iterator.default_iterator.pat it p
          in
          let locals_it = { Ast_iterator.default_iterator with pat } in
          locals_it.expr locals_it arg;
          let depth = ref 0 in
          let expr it (e : expression) =
            match e.pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
                incr depth;
                Ast_iterator.default_iterator.expr it e;
                decr depth
            | Pexp_ident { txt = Longident.Lident n; loc }
              when !depth > 0 && Hashtbl.mem arenas n
                   && not (Hashtbl.mem locals n) ->
                diags :=
                  diag ctx ~rule:"arena-escape" ~loc
                    "closure passed to %s captures the enclosing %s '%s': an \
                     arena is single-domain scratch and must never be shared \
                     across Harness.Pool domains; create a task-local arena \
                     inside the closure"
                    what (Hashtbl.find arenas n) n
                  :: !diags
            | _ -> Ast_iterator.default_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with expr } in
          it.expr it arg
        in
        let expr it (e : expression) =
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              (match ident_path f with
              | Some p -> (
                  match List.rev p with
                  | fn :: "Pool" :: _ when fn = "run" || fn = "map" ->
                      List.iter
                        (fun (_, a) -> scan_pool_arg ~what:"Pool.run/map" a)
                        args
                  | _ -> ())
              | None -> ());
              (* any ~fanout is assumed to wrap Pool.run: its closures
                 ship to worker domains *)
              List.iter
                (fun ((lbl : Asttypes.arg_label), a) ->
                  match lbl with
                  | Labelled "fanout" | Optional "fanout" ->
                      scan_pool_arg ~what:"a ~fanout" a
                  | _ -> ())
                args)
          | _ -> ());
          Ast_iterator.default_iterator.expr it e
        in
        let it = { Ast_iterator.default_iterator with expr } in
        it.structure_item it si
      end
    in
    let expr it (e : expression) =
      (match e.pexp_desc with
      | Pexp_apply (f, args) -> (
          match ident_path f with
          | Some p
            when (match List.rev p with
                 | "with_arena" :: "Arena" :: _ -> true
                 | _ -> false) ->
              List.iter
                (fun (_, a) -> if is_function_literal a then scan_with_arena_body a)
                args
          | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str;
    List.iter scan_item str;
    !diags
  in
  {
    id = "arena-escape";
    doc =
      "arena buffers must not escape the with_arena extent or be captured by \
       closures shipped to Pool.run or a ~fanout";
    check;
  }

(* ------------------------------------------------------------------ *)

let all =
  [ no_ambient_rng; float_eq; unordered_fold; pool_capture; arena_escape;
    lib_hygiene ]
let find id = List.find_opt (fun r -> r.id = id) all
