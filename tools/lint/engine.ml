(** Driving the rules over files: parsing with compiler-libs, path
    classification, suppression filtering, directory walking. *)

open Analysis_common

let classify path =
  let segs = String.split_on_char '/' path in
  let in_lib = List.mem "lib" segs in
  let base = Filename.basename path in
  {
    Rules.path;
    in_lib;
    print_exempt = in_lib && (base = "report.ml" || base = "trace.ml");
  }

type error = { file : string; message : string }

(** Lint one already-read source. [Error _] means the file does not
    parse — a build would fail too, but the linter must not crash. *)
let lint_source ?(rules = Rules.all) ~path src =
  match Source.parse_implementation ~path src with
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error
            {
              file = path;
              message = Format.asprintf "%a" Location.print_report report;
            }
      | _ -> Error { file = path; message = Printexc.to_string exn })
  | str ->
      let ctx = classify path in
      let diags = List.concat_map (fun (r : Rules.t) -> r.check ctx str) rules in
      let spans = Suppress.allow_spans str in
      let directives = Suppress.comment_directives src in
      Ok (List.sort Diagnostic.compare (Suppress.filter ~spans ~directives diags))

let lint_file ?rules path = lint_source ?rules ~path (Source.read_file path)

(** Every [.ml] under [roots] (files are taken as-is), skipping [_build]
    and dot-directories, in sorted order. *)
let discover roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry ->
             if entry <> "_build" && not (String.length entry > 0 && entry.[0] = '.')
             then walk (Filename.concat path entry))
    else if Filename.check_suffix path ".ml" then acc := path :: !acc
  in
  List.iter (fun r -> if Sys.file_exists r then walk r) roots;
  List.rev !acc

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

type result = {
  files : int;
  diagnostics : Diagnostic.t list;
  errors : error list;
}

let lint_roots ?rules roots =
  let files = discover roots in
  let diagnostics, errors =
    List.fold_left
      (fun (ds, es) f ->
        match lint_file ?rules f with
        | Ok d -> (d :: ds, es)
        | Error e -> (ds, e :: es))
      ([], []) files
  in
  {
    files = List.length files;
    diagnostics = List.sort Diagnostic.compare (List.concat diagnostics);
    errors = List.rev errors;
  }
