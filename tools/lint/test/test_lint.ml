(* Golden tests for wlan-lint: every fixture's diagnostics must match its
   .expected file byte for byte, every rule of the registry must fire on
   at least one fixture, and the suppression machinery must hold. The
   fixtures are parse-only lint fodder — they are data, not build units. *)

open Wlan_lint_kernel
open Analysis_common

let fixture_dir = "../fixtures"

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Lint a fixture under its repo-relative-ish name (so lib/ fixtures are
   classified as library code and goldens carry stable paths). *)
let lint rel =
  let src = read (Filename.concat fixture_dir rel) in
  match Engine.lint_source ~path:rel src with
  | Ok diags -> diags
  | Error e -> Alcotest.failf "fixture %s does not parse:\n%s" rel e.message

let rendered rel =
  match List.map Diagnostic.to_text (lint rel) with
  | [] -> ""
  | lines -> String.concat "\n" lines ^ "\n"

let fixtures =
  [
    "r1_ambient_rng.ml"; "r2_float_eq.ml"; "r3_unordered_fold.ml";
    "r4_pool_capture.ml"; "lib/r5_hygiene.ml"; "r6_arena_escape.ml"; "clean.ml";
  ]

let test_golden rel () =
  let expected = read (Filename.concat fixture_dir (Filename.remove_extension rel ^ ".expected")) in
  Alcotest.(check string) (rel ^ " diagnostics") expected (rendered rel)

(* The acceptance bar: each of R1..R6 has a fixture that triggers it. *)
let test_every_rule_fires () =
  let fired =
    List.concat_map lint fixtures
    |> List.map (fun (d : Diagnostic.t) -> d.rule)
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun (r : Rules.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s fires on the corpus" r.id)
        true (List.mem r.id fired))
    Rules.all

let test_clean_fixture () =
  Alcotest.(check int) "clean.ml findings" 0 (List.length (lint "clean.ml"))

(* r2 contains one attribute-suppressed and two comment-suppressed
   comparisons; disabling suppression is not a flag, so assert indirectly:
   the same source with the escape hatches stripped yields three more
   findings. *)
let test_suppressions_count () =
  let src = read (Filename.concat fixture_dir "r2_float_eq.ml") in
  let stripped =
    Str.global_replace (Str.regexp_string "[@lint.allow float_eq]") "" src
    |> Str.global_replace (Str.regexp "(\\* lint: allow [^*]*\\*)") ""
  in
  let count path s =
    match Engine.lint_source ~path s with
    | Ok d -> List.length d
    | Error e -> Alcotest.failf "parse: %s" e.message
  in
  let with_suppress = count "r2_float_eq.ml" src in
  let without = count "r2_float_eq.ml" stripped in
  Alcotest.(check int) "suppressions hide exactly 3 findings" 3
    (without - with_suppress)

(* lib/ classification: the same hygiene source outside a lib/ segment
   must only keep the path-independent complaints. *)
let test_lib_scoping () =
  let src = read (Filename.concat fixture_dir "lib/r5_hygiene.ml") in
  let outside =
    match Engine.lint_source ~path:"bench/r5_hygiene.ml" src with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" e.message
  in
  Alcotest.(check int) "lib-hygiene is scoped to lib/" 0 (List.length outside)

(* The exempted reporting modules may print. *)
let test_print_exempt () =
  let src = "let banner () = print_endline \"== results ==\"\n" in
  let count path =
    match Engine.lint_source ~path src with
    | Ok d -> List.length d
    | Error e -> Alcotest.failf "parse: %s" e.message
  in
  Alcotest.(check int) "lib/harness/report.ml may print" 0
    (count "lib/harness/report.ml");
  Alcotest.(check int) "lib/sim/trace.ml may print" 0
    (count "lib/sim/trace.ml");
  Alcotest.(check int) "other lib files may not" 1
    (count "lib/harness/stats.ml")

let test_json_shape () =
  let d = List.hd (lint "r1_ambient_rng.ml") in
  let s = Format.asprintf "%a" Diagnostic.pp_json d in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true
        (Astring.String.is_infix ~affix:needle s))
    [ {|"file":"r1_ambient_rng.ml"|}; {|"rule":"no-ambient-rng"|}; {|"line":4|} ]

let test_parse_error_is_error () =
  match Engine.lint_source ~path:"broken.ml" "let = in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let () =
  Alcotest.run "wlan-lint"
    [
      ( "golden",
        List.map
          (fun rel -> Alcotest.test_case rel `Quick (test_golden rel))
          fixtures );
      ( "registry",
        [
          Alcotest.test_case "every rule fires" `Quick test_every_rule_fires;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attribute and comment escapes" `Quick
            test_suppressions_count;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "lib-hygiene scoped to lib/" `Quick
            test_lib_scoping;
          Alcotest.test_case "report/trace exemption" `Quick test_print_exempt;
        ] );
      ( "output",
        [
          Alcotest.test_case "json fields" `Quick test_json_shape;
          Alcotest.test_case "parse errors surface" `Quick
            test_parse_error_is_error;
        ] );
    ]
