(* R1 fixture: ambient RNG taps are errors; split Random.State is fine.
   Parse-only — this file is lint fodder, never compiled. *)

let bad_jitter () = Random.float 1.0

let bad_setup () =
  Random.self_init ();
  Random.int 10

let bad_indirect = Stdlib.Random.bool

let ok_split st = Random.State.float st 1.0

let ok_make seed tag i = Random.State.make [| seed; tag; i |]
