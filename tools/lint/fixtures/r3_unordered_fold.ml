(* R3 fixture: Hashtbl.fold/iter that let unspecified bucket order escape
   in a list, versus the sorted idiom. Parse-only. *)

let bad_escape tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let bad_iter_ref tbl =
  let acc = ref [] in
  Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) tbl;
  !acc

let ok_sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let ok_scalar tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let ok_iter_sum tbl =
  let total = ref 0 in
  Hashtbl.iter (fun _ v -> total := !total + v) tbl;
  !total
