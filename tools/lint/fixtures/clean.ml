(* Negative fixture: idiomatic repo code that every rule must accept. *)

let mean xs =
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let histogram xs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun x ->
      Hashtbl.replace tbl x (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
    xs;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fan_out pool seeds = Pool.run pool (List.map (fun s () -> s + 1) seeds)
