(* R6 fixture: arena scratch escaping its extent or crossing domains.
   Parse-only — Arena stands in for Optkit.Arena, Pool for Harness.Pool. *)

let bad_return_acquire n = Arena.with_arena (fun a -> Arena.floats a "scores" n)

let bad_return_bound n =
  Arena.with_arena (fun a ->
      let ub = Arena.floats a "ub" n in
      Array.fill ub 0 n 0.;
      ub)

let bad_return_pair n =
  Arena.with_arena (fun a ->
      let gains = Arena.ints a "gains" n in
      (n, gains))

let bad_return_some n =
  Arena.with_arena (fun a ->
      let touched = Arena.ints a "touched" n in
      if n > 0 then Some touched else None)

let bad_return_arena () = Arena.with_arena (fun a -> a)

let ok_scalar_result n =
  Arena.with_arena (fun a ->
      let ub = Arena.floats a "ub" n in
      Array.fill ub 0 n 1.;
      ub.(0))

let ok_copy_out n =
  Arena.with_arena (fun a ->
      let ub = Arena.floats a "ub" n in
      Array.fill ub 0 n 1.;
      Array.copy ub)

let bad_shared_across_pool pool jobs n =
  let scratch = Arena.create () in
  Pool.run pool
    (List.map
       (fun j () ->
         ignore (Arena.floats scratch "s" n);
         j)
       jobs)

let bad_arena_across_fanout run_parallel p =
  let scratch = Arena.create () in
  Bla.run
    ~fanout:(fun fs ->
      run_parallel
        (List.map
           (fun f () ->
             ignore (Arena.ints scratch "x" 4);
             f ())
           fs))
    p

let bad_buffer_across_pool pool jobs =
  let scratch = Arena.create () in
  let plane = Arena.floats scratch "plane" 8 in
  Pool.run pool (List.map (fun j () -> plane.(0) <- float_of_int j) jobs)

let ok_task_local_arena pool jobs n =
  Pool.run pool
    (List.map
       (fun j () ->
         let scratch = Arena.create () in
         ignore (Arena.floats scratch "s" n);
         j)
       jobs)

let ok_used_before_dispatch pool jobs =
  let scratch = Arena.create () in
  let warm = Arena.floats scratch "warm" 8 in
  warm.(0) <- 1.;
  Pool.run pool (List.map (fun j () -> j) jobs)
