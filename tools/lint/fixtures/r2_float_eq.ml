(* R2 fixture: structural comparison on syntactically-float operands,
   plus both suppression forms. Parse-only. *)

let bad_literal x = x = 3.14
let bad_arith a b = a +. b <> 1.0
let bad_call a = compare (float_of_int a) 0.5
let bad_sentinel x = x = infinity
let bad_module_fn a b = Float.max a b = 0.

let ok_annotated baseline = (baseline = 0.) [@lint.allow float_eq]

let ok_comment_same_line baseline =
  baseline = 0. (* lint: allow float-eq *)

let ok_comment_prev_line baseline =
  (* lint: allow float_eq *)
  baseline = 0.

let ok_int a b = a = b
let ok_tolerant a b = Float.abs (a -. b) <= 1e-9
