(* R4 fixture: shared mutable state captured by closures shipped to the
   domain pool. Parse-only — Pool here stands in for Harness.Pool. *)

let bad_counter pool jobs =
  let hits = ref 0 in
  Pool.run pool
    (List.map
       (fun j () ->
         incr hits;
         j)
       jobs)

let bad_table pool jobs =
  let seen = Hashtbl.create 16 in
  Pool.run pool (List.map (fun j () -> Hashtbl.replace seen j j) jobs)

let bad_buffer pool lines =
  let out = Buffer.create 64 in
  Harness.Pool.map (fun l -> Buffer.add_string out l) lines

let ok_atomic pool jobs =
  let hits = Atomic.make 0 in
  Pool.run pool
    (List.map
       (fun j () ->
         Atomic.incr hits;
         j)
       jobs)

let ok_presplit pool seeds = Pool.run pool (List.map (fun s () -> s * 2) seeds)

let ok_outside pool jobs =
  (* the ref is used before dispatch, never inside a shipped closure *)
  let n = ref 0 in
  n := List.length jobs;
  ignore !n;
  Pool.run pool (List.map (fun j () -> j) jobs)
