(* R4 fixture: shared mutable state captured by closures shipped to the
   domain pool. Parse-only — Pool here stands in for Harness.Pool. *)

let bad_counter pool jobs =
  let hits = ref 0 in
  Pool.run pool
    (List.map
       (fun j () ->
         incr hits;
         j)
       jobs)

let bad_table pool jobs =
  let seen = Hashtbl.create 16 in
  Pool.run pool (List.map (fun j () -> Hashtbl.replace seen j j) jobs)

let bad_buffer pool lines =
  let out = Buffer.create 64 in
  Harness.Pool.map (fun l -> Buffer.add_string out l) lines

let ok_atomic pool jobs =
  let hits = Atomic.make 0 in
  Pool.run pool
    (List.map
       (fun j () ->
         Atomic.incr hits;
         j)
       jobs)

let ok_presplit pool seeds = Pool.run pool (List.map (fun s () -> s * 2) seeds)

let ok_outside pool jobs =
  (* the ref is used before dispatch, never inside a shipped closure *)
  let n = ref 0 in
  n := List.length jobs;
  ignore !n;
  Pool.run pool (List.map (fun j () -> j) jobs)

(* the same hazard one layer up: a [~fanout] handed to the B* grid
   typically wraps Pool.run, so its closures ship the grid thunks to
   worker domains too *)
let bad_fanout_counter run_parallel inst grid =
  let evals = ref 0 in
  Scg.solve_grid
    ~fanout:(fun fs ->
      run_parallel
        (List.map
           (fun f () ->
             incr evals;
             f ())
           fs))
    inst ~grid ()

let bad_bla_fanout run_parallel p =
  let best = Hashtbl.create 4 in
  Bla.run
    ~fanout:(fun fs ->
      run_parallel (List.map (fun f () -> Hashtbl.replace best 0 (f ())) fs))
    p

let ok_fanout_pool pool inst grid =
  Scg.solve_grid ~fanout:(Pool.run pool) inst ~grid ()

let ok_fanout_presplit pool p =
  (* mutable state used before dispatch only, never inside the fanout *)
  let n = ref 0 in
  n := 12;
  Bla.run_exn ~n_guesses:!n ~fanout:(Pool.run pool) p
