(* R5 fixture: library-code hygiene. Lives under a lib/ segment so the
   engine classifies it as library code. Parse-only. *)

let bad_debug x =
  print_endline "debug";
  Printf.printf "%d\n" x

let bad_fmt () = Fmt.pr "hello@."
let bad_cast (x : int) : float = Obj.magic x

let bad_bail () = exit 2

let ok_log x = Logs.debug (fun m -> m "x = %d" x)
let ok_to_channel oc s = output_string oc s
