(* wlan-lint: static invariant checker for this repository.

   Parses every .ml under the given roots (default: lib bin bench
   examples) with compiler-libs and runs the repo-specific rules of
   Wlan_lint_kernel.Rules. Exit status: 0 clean, 1 findings, 2 parse
   or usage errors. *)

open Wlan_lint_kernel
open Analysis_common

let usage =
  "wlan-lint [options] [path ...]\n\
   Static invariant checks for the wlan_mcast tree (DESIGN.md §4.6).\n\
   Paths may be files or directories; default: lib bin bench examples."

let () =
  let format = ref `Text in
  let enabled = ref [] in
  let disabled = ref [] in
  let paths = ref [] in
  let list_rules = ref false in
  let quiet = ref false in
  let spec =
    [
      ( "--format",
        Arg.Symbol
          ( [ "text"; "json" ],
            fun s -> format := if s = "json" then `Json else `Text ),
        " output format (default text)" );
      ( "--rule",
        Arg.String (fun r -> enabled := r :: !enabled),
        "<id> run only this rule (repeatable)" );
      ( "--disable",
        Arg.String (fun r -> disabled := r :: !disabled),
        "<id> skip this rule (repeatable)" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
      ("--quiet", Arg.Set quiet, " suppress the trailing summary line");
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rules.t) -> Printf.printf "%-16s %s\n" r.id r.doc)
      Rules.all;
    exit 0
  end;
  let bad_id id =
    Printf.eprintf "wlan-lint: unknown rule %S (try --list-rules)\n" id;
    exit 2
  in
  List.iter
    (fun id -> if Rules.find id = None then bad_id id)
    (!enabled @ !disabled);
  let rules =
    Rules.all
    |> List.filter (fun (r : Rules.t) ->
           (!enabled = [] || List.mem r.id !enabled)
           && not (List.mem r.id !disabled))
  in
  let roots = if !paths = [] then Engine.default_roots else List.rev !paths in
  let res = Engine.lint_roots ~rules roots in
  (match !format with
  | `Text ->
      List.iter
        (fun d -> print_endline (Diagnostic.to_text d))
        res.diagnostics;
      List.iter
        (fun (e : Engine.error) ->
          Printf.printf "%s: parse error\n%s\n" e.file e.message)
        res.errors;
      if not !quiet then
        Printf.printf "wlan-lint: %d file(s), %d finding(s), %d parse error(s)\n"
          res.files
          (List.length res.diagnostics)
          (List.length res.errors)
  | `Json ->
      print_string "[";
      List.iteri
        (fun i d ->
          if i > 0 then print_string ",";
          print_string (Format.asprintf "%a" Diagnostic.pp_json d))
        res.diagnostics;
      print_endline "]");
  if res.errors <> [] then exit 2
  else if res.diagnostics <> [] then exit 1
  else exit 0
