(* Benchmark and figure-reproduction harness.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper's evaluation (ICDCS'07 §7) as text tables: Table 1, Figures 9-12,
   the abstract's headline numbers, and the design-choice ablations listed
   in DESIGN.md. `--bechamel` additionally runs micro-benchmarks of the
   algorithms (one Bechamel test per algorithm).

   Selecting experiments: `dune exec bench/main.exe -- fig9 fig11`
   Quick mode (fewer scenarios): `dune exec bench/main.exe -- --quick` *)

let known =
  [
    "table1"; "fig9"; "fig10"; "fig11"; "fig12"; "headline"; "ablate-rate";
    "ablate-bstar"; "ablate-sched"; "ablate-bla-mode"; "ablate-mla-alg";
    "ext-popularity";
    "ext-interference"; "ext-dual"; "ext-loss"; "ext-mobility"; "ext-power";
    "ext-standards";
  ]

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Fmt.pr "[%s: %.1fs]@." name (Unix.gettimeofday () -. t0);
  r

(* Figures are cached so `headline` can reuse fig9a/fig10a/fig11 when both
   are requested in the same invocation. *)
let cache : (string, Harness.Series.figure) Hashtbl.t = Hashtbl.create 16

let figure cfg id compute =
  match Hashtbl.find_opt cache id with
  | Some f -> f
  | None ->
      let f = timed id (fun () -> compute ?cfg:(Some cfg) ()) in
      Hashtbl.replace cache id f;
      f

(* set by the CLI: directory to also write each figure as CSV *)
let csv_dir : string option ref = ref None

let print_fig f =
  Fmt.pr "%a@." Harness.Report.pp_figure f;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (f.Harness.Series.id ^ ".csv") in
      let oc = open_out path in
      output_string oc (Harness.Report.to_csv f);
      close_out oc;
      Fmt.pr "[csv: %s]@." path

let run_experiment cfg name =
  let open Harness.Experiments in
  match name with
  | "table1" -> Fmt.pr "%a@." Harness.Report.pp_table1 (table1 ())
  | "fig9" ->
      print_fig (figure cfg "fig9a" fig9a);
      print_fig (figure cfg "fig9b" fig9b);
      print_fig (figure cfg "fig9c" fig9c)
  | "fig10" ->
      print_fig (figure cfg "fig10a" fig10a);
      print_fig (figure cfg "fig10b" fig10b);
      print_fig (figure cfg "fig10c" fig10c)
  | "fig11" -> print_fig (figure cfg "fig11" fig11)
  | "fig12" ->
      print_fig (figure cfg "fig12a" fig12a);
      print_fig (figure cfg "fig12b" fig12b);
      print_fig (figure cfg "fig12c" fig12c)
  | "headline" ->
      let f9 = figure cfg "fig9a" fig9a in
      let f10 = figure cfg "fig10a" fig10a in
      let f11 = figure cfg "fig11" fig11 in
      let at fig n x = Option.get (Harness.Series.mean_at fig n x) in
      let h =
        {
          mla_total_load_reduction_pct =
            Harness.Stats.pct_reduction
              ~baseline:(at f9 "SSA" 400.)
              ~improved:(at f9 "MLA-centralized" 400.);
          bla_max_load_reduction_pct =
            Harness.Stats.pct_reduction
              ~baseline:(at f10 "SSA" 400.)
              ~improved:(at f10 "BLA-centralized" 400.);
          mnu_user_gain_pct =
            Harness.Stats.pct_gain
              ~baseline:(at f11 "SSA" 0.04)
              ~improved:(at f11 "MNU-centralized" 0.04);
        }
      in
      Fmt.pr "%a@." Harness.Report.pp_headline h
  | "ablate-rate" -> print_fig (figure cfg "ablate-rate" ablate_rate)
  | "ablate-bstar" -> print_fig (figure cfg "ablate-bstar" ablate_bstar)
  | "ablate-sched" -> print_fig (figure cfg "ablate-sched" ablate_sched)
  | "ablate-bla-mode" ->
      print_fig (figure cfg "ablate-bla-mode" ablate_bla_mode)
  | "ablate-mla-alg" -> print_fig (figure cfg "ablate-mla-alg" ablate_mla_alg)
  | "ext-popularity" -> print_fig (figure cfg "ext-popularity" ext_popularity)
  | "ext-interference" ->
      print_fig (figure cfg "ext-interference" ext_interference)
  | "ext-dual" -> print_fig (figure cfg "ext-dual" ext_dual)
  | "ext-loss" -> print_fig (figure cfg "ext-loss" ext_loss)
  | "ext-mobility" -> print_fig (figure cfg "ext-mobility" ext_mobility)
  | "ext-power" -> print_fig (figure cfg "ext-power" ext_power)
  | "ext-standards" -> print_fig (figure cfg "ext-standards" ext_standards)
  | other ->
      Fmt.epr "unknown experiment %S (known: %a)@." other
        Fmt.(list ~sep:sp string)
        known

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per algorithm                   *)
(* ------------------------------------------------------------------ *)

let bechamel_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  let p =
    List.hd
      (Wlan_model.Scenario_gen.problems ~seed:99 ~n:1
         {
           Wlan_model.Scenario_gen.paper_default with
           n_aps = 100;
           n_users = 200;
         })
  in
  let module C = Mcast_core in
  let stagef f = Staged.stage (fun () -> ignore (f ())) in
  let tests =
    Test.make_grouped ~name:"algorithms"
      [
        Test.make ~name:"ssa" (stagef (fun () -> C.Ssa.run p));
        Test.make ~name:"mla-centralized" (stagef (fun () -> C.Mla.run p));
        Test.make ~name:"mla-distributed"
          (stagef (fun () -> C.Distributed.mla p));
        Test.make ~name:"bla-centralized-soft"
          (stagef (fun () -> C.Bla.run_exn ~mode:`Soft p));
        Test.make ~name:"bla-centralized-hard"
          (stagef (fun () -> C.Bla.run_exn ~mode:`Hard p));
        Test.make ~name:"bla-distributed"
          (stagef (fun () -> C.Distributed.bla p));
        Test.make ~name:"mnu-centralized"
          (stagef (fun () -> C.Mnu.run (Wlan_model.Problem.with_budget p 0.05)));
        Test.make ~name:"mnu-distributed"
          (stagef (fun () ->
               C.Distributed.mnu (Wlan_model.Problem.with_budget p 0.05)));
        Test.make ~name:"reduction"
          (stagef (fun () -> C.Reduction.cover_instance p));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.== bechamel: per-call execution time (100 APs, 200 users)@.";
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Fmt.str "%12.0f ns/run" t
        | _ -> "          (n/a)"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Fmt.str "r2=%.3f" r
        | None -> ""
      in
      Fmt.pr "%-40s %s  %s@." name est r2)
    rows

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let experiments_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "Experiments to run (default: all). Known: table1 fig9 fig10 fig11 \
           fig12 headline ablate-rate ablate-bstar ablate-sched \
           ablate-bla-mode.")

let scenarios_arg =
  Arg.(
    value & opt int 40
    & info [ "scenarios" ] ~doc:"Random scenarios per point.")

let small_arg =
  Arg.(
    value & opt int 8
    & info [ "small-scenarios" ]
        ~doc:"Scenarios per point for fig12 (ILP-bound).")

let seed_arg = Arg.(value & opt int 2007 & info [ "seed" ] ~doc:"Master seed.")

let node_limit_arg =
  Arg.(
    value & opt int 4000
    & info [ "node-limit" ]
        ~doc:"Branch-and-bound node budget per exact solve.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Fast pass: 5 scenarios, 2 small.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each figure as DIR/<id>.csv.")

let bechamel_arg =
  Arg.(
    value & flag
    & info [ "bechamel" ] ~doc:"Also run Bechamel micro-benchmarks.")

let main names scenarios small seed node_limit quick csv bech =
  csv_dir := csv;
  let cfg =
    {
      Harness.Experiments.scenarios = (if quick then 5 else scenarios);
      small_scenarios = (if quick then 2 else small);
      seed;
      ilp_node_limit = node_limit;
    }
  in
  let names =
    match names with
    | [] ->
        [
          "table1"; "fig9"; "fig10"; "fig11"; "fig12"; "headline";
          "ablate-rate"; "ablate-bstar"; "ablate-sched"; "ablate-bla-mode";
          "ablate-mla-alg"; "ext-popularity"; "ext-interference"; "ext-dual";
          "ext-loss"; "ext-mobility"; "ext-power"; "ext-standards";
        ]
    | ns -> ns
  in
  Fmt.pr "wlan-mcast benchmark harness: %d scenarios/point, seed %d@."
    cfg.Harness.Experiments.scenarios cfg.Harness.Experiments.seed;
  let t0 = Unix.gettimeofday () in
  List.iter (run_experiment cfg) names;
  if bech then bechamel_benchmarks ();
  Fmt.pr "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)

let cmd =
  Cmd.v
    (Cmd.info "wlan-mcast-bench"
       ~doc:
         "Reproduce the tables and figures of the ICDCS'07 multicast \
          association-control paper")
    Term.(
      const main $ experiments_arg $ scenarios_arg $ small_arg $ seed_arg
      $ node_limit_arg $ quick_arg $ csv_arg $ bechamel_arg)

let () = exit (Cmd.eval cmd)
