(* Benchmark and figure-reproduction harness.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper's evaluation (ICDCS'07 §7) as text tables: Table 1, Figures 9-12,
   the abstract's headline numbers, and the design-choice ablations listed
   in DESIGN.md. `--bechamel` additionally runs micro-benchmarks of the
   algorithms (one Bechamel test per algorithm) and of the Harness.Pool
   scenario fan-out.

   Selecting experiments: `dune exec bench/main.exe -- fig9 fig11`
   Quick mode (fewer scenarios): `dune exec bench/main.exe -- --quick`
   Parallel scenarios: `dune exec bench/main.exe -- fig9 -j 4`
   (any -j value produces bit-identical figures; see EXPERIMENTS.md) *)

let known =
  [
    "table1"; "fig9"; "fig10"; "fig11"; "fig12"; "headline"; "ablate-rate";
    "ablate-bstar"; "ablate-sched"; "ablate-bla-mode"; "ablate-mla-alg";
    "ext-popularity";
    "ext-interference"; "ext-dual"; "ext-loss"; "ext-mobility"; "ext-power";
    "ext-standards"; "ext-churn"; "ablate-phy";
  ]

(* Wall-clock source: CLOCK_MONOTONIC (via bechamel's stub), immune to
   NTP steps and wall-clock jumps that would skew or negate the speedup
   footers gettimeofday used to produce. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* When --bench-json is active every timing we print is also recorded
   here, to be written out as a Bench_json snapshot at exit. *)
let bench_entries : Harness.Bench_json.entry list ref = ref []

(* [cpu] is omitted (not zero-filled) for rows with no CPU sample. *)
let record_entry ?cpu name ~wall =
  bench_entries :=
    { Harness.Bench_json.name; wall_s = wall; cpu_s = cpu } :: !bench_entries

(* Per-figure report footer: wall clock, process CPU time (all domains),
   and their ratio — the observable parallel speedup. Sys.time sums the
   CPU time of every domain, so cpu/wall ~ 1 when sequential and ~ jobs
   when the fan-out scales. *)
let timed ~jobs name f =
  let t0 = now_s () in
  let c0 = Sys.time () in
  let r = f () in
  let wall = now_s () -. t0 in
  let cpu = Sys.time () -. c0 in
  Fmt.pr "[%s: %.1fs wall, %.1fs cpu, %.2fx parallel speedup, jobs=%d]@." name
    wall cpu
    (if wall > 0. then cpu /. wall else 1.)
    jobs;
  record_entry ("exp:" ^ name) ~wall ~cpu;
  r

(* Figures are cached so `headline` can reuse fig9a/fig10a/fig11 when both
   are requested in the same invocation. The cache is keyed by (id, cfg) —
   not id alone — so the same figure under two configs in one run is
   recomputed, never served stale. *)
let cache = Harness.Fig_cache.create ()

let figure (cfg : Harness.Experiments.config) id =
  match List.assoc_opt id Harness.Experiments.drivers with
  | None -> Fmt.invalid_arg "unknown figure id %S" id
  | Some compute ->
      Harness.Fig_cache.get cache ~cfg ~id (fun () ->
          timed ~jobs:cfg.Harness.Experiments.jobs id (fun () ->
              compute ?cfg:(Some cfg) ()))

(* set by the CLI: directory to also write each figure as CSV *)
let csv_dir : string option ref = ref None

let print_fig f =
  Fmt.pr "%a@." Harness.Report.pp_figure f;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (f.Harness.Series.id ^ ".csv") in
      let oc = open_out path in
      output_string oc (Harness.Report.to_csv f);
      close_out oc;
      Fmt.pr "[csv: %s]@." path

(* experiment name -> figure ids (most experiments are a single figure;
   fig9/fig10/fig12 are triptychs) *)
let figures_of = function
  | "fig9" -> [ "fig9a"; "fig9b"; "fig9c" ]
  | "fig10" -> [ "fig10a"; "fig10b"; "fig10c" ]
  | "fig12" -> [ "fig12a"; "fig12b"; "fig12c" ]
  | "fig11" -> [ "fig11" ]
  | id -> [ id ]

let run_experiment cfg name =
  match name with
  | "table1" ->
      Fmt.pr "%a@." Harness.Report.pp_table1 (Harness.Experiments.table1 ())
  | "headline" ->
      let f9 = figure cfg "fig9a" in
      let f10 = figure cfg "fig10a" in
      let f11 = figure cfg "fig11" in
      let at fig n x = Option.get (Harness.Series.mean_at fig n x) in
      let h =
        {
          Harness.Experiments.mla_total_load_reduction_pct =
            Harness.Stats.pct_reduction
              ~baseline:(at f9 "SSA" 400.)
              ~improved:(at f9 "MLA-centralized" 400.);
          bla_max_load_reduction_pct =
            Harness.Stats.pct_reduction
              ~baseline:(at f10 "SSA" 400.)
              ~improved:(at f10 "BLA-centralized" 400.);
          mnu_user_gain_pct =
            Harness.Stats.pct_gain
              ~baseline:(at f11 "SSA" 0.04)
              ~improved:(at f11 "MNU-centralized" 0.04);
        }
      in
      Fmt.pr "%a@." Harness.Report.pp_headline h
  | name when List.mem name known ->
      List.iter (fun id -> print_fig (figure cfg id)) (figures_of name)
  | other ->
      Fmt.epr "unknown experiment %S (known: %a)@." other
        Fmt.(list ~sep:sp string)
        known

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_run ~header tests =
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.== bechamel: %s@." header;
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) ->
            (* an OLS per-run estimate has no CPU-time counterpart *)
            record_entry ("bechamel:" ^ name) ~wall:(t /. 1e9);
            Fmt.str "%12.0f ns/run" t
        | _ -> "          (n/a)"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Fmt.str "r2=%.3f" r
        | None -> ""
      in
      Fmt.pr "%-40s %s  %s@." name est r2)
    rows

let bechamel_algorithms () =
  let open Bechamel in
  let p =
    List.hd
      (Wlan_model.Scenario_gen.problems ~seed:99 ~n:1
         {
           Wlan_model.Scenario_gen.paper_default with
           n_aps = 100;
           n_users = 200;
         })
  in
  let module C = Mcast_core in
  let stagef f = Staged.stage (fun () -> ignore (f ())) in
  bechamel_run ~header:"per-call execution time (100 APs, 200 users)"
    (Test.make_grouped ~name:"algorithms"
       [
         Test.make ~name:"ssa" (stagef (fun () -> C.Ssa.run p));
         Test.make ~name:"mla-centralized" (stagef (fun () -> C.Mla.run p));
         Test.make ~name:"mla-distributed"
           (stagef (fun () -> C.Distributed.mla p));
         Test.make ~name:"bla-centralized-soft"
           (stagef (fun () -> C.Bla.run_exn ~mode:`Soft p));
         Test.make ~name:"bla-centralized-hard"
           (stagef (fun () -> C.Bla.run_exn ~mode:`Hard p));
         Test.make ~name:"bla-distributed"
           (stagef (fun () -> C.Distributed.bla p));
         Test.make ~name:"mnu-centralized"
           (stagef (fun () -> C.Mnu.run (Wlan_model.Problem.with_budget p 0.05)));
         Test.make ~name:"mnu-distributed"
           (stagef (fun () ->
                C.Distributed.mnu (Wlan_model.Problem.with_budget p 0.05)));
         Test.make ~name:"reduction"
           (stagef (fun () -> C.Reduction.cover_instance p));
       ])

(* Sequential vs pooled evaluation of one batch of scenarios — the shape
   every figure driver now has. Tracks the fan-out win across BENCH
   snapshots. *)
let bechamel_pool ~jobs () =
  let open Bechamel in
  let problems =
    Wlan_model.Scenario_gen.problems ~seed:99 ~n:8
      {
        Wlan_model.Scenario_gen.paper_default with
        n_aps = 100;
        n_users = 200;
      }
  in
  let eval p = ignore (Mcast_core.Mla.run p) in
  let pool = Harness.Pool.create ~jobs in
  let tests =
    Test.make_grouped ~name:"pool"
      [
        Test.make ~name:"scenarios-sequential"
          (Staged.stage (fun () -> List.iter eval problems));
        Test.make
          ~name:(Fmt.str "scenarios-pooled-j%d" jobs)
          (Staged.stage (fun () ->
               ignore
                 (Harness.Pool.run pool
                    (List.map (fun p () -> eval p) problems))));
      ]
  in
  bechamel_run
    ~header:
      (Fmt.str "8-scenario MLA batch, sequential vs pooled (jobs=%d)" jobs)
    tests;
  Harness.Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Per-algorithm wall times for the bench-json snapshot                 *)
(* ------------------------------------------------------------------ *)

(* One entry per (algorithm, scale): median of [reps] single solves on a
   fixed seed-99 topology, recorded as "alg:<name>@<aps>x<users>". The
   scales bracket the paper's evaluation: the ablation scale (100 APs,
   200 users) and the fig9 scale (200 APs, 400 users). *)
let algorithm_timings ~quick () =
  let module C = Mcast_core in
  let algorithms =
    [
      ("ssa", fun p -> ignore (C.Ssa.run p));
      ("mla-centralized", fun p -> ignore (C.Mla.run p));
      ("mla-distributed", fun p -> ignore (C.Distributed.mla p));
      ("bla-centralized-soft", fun p -> ignore (C.Bla.run_exn ~mode:`Soft p));
      ("bla-centralized-hard", fun p -> ignore (C.Bla.run_exn ~mode:`Hard p));
      ("bla-distributed", fun p -> ignore (C.Distributed.bla p));
      ( "mnu-centralized",
        fun p -> ignore (C.Mnu.run (Wlan_model.Problem.with_budget p 0.05)) );
      ( "mnu-distributed",
        fun p ->
          ignore (C.Distributed.mnu (Wlan_model.Problem.with_budget p 0.05)) );
      (* opt-in fast paths from this PR; no counterpart in older
         baselines, so they show up without a speedup ratio *)
      ( "bla-centralized-soft-bisect",
        fun p -> ignore (C.Bla.run_exn ~mode:`Soft ~strategy:`Bisect p) );
      ( "bla-centralized-soft-lazy",
        fun p -> ignore (C.Bla.run_exn ~mode:`Soft ~engine:`Lazy p) );
      ( "mnu-centralized-lazy",
        fun p ->
          ignore
            (C.Mnu.run ~engine:`Lazy (Wlan_model.Problem.with_budget p 0.05))
      );
    ]
  in
  let pool_algorithms pool =
    [
      ( "bla-centralized-soft-pool",
        fun p ->
          ignore (C.Bla.run_exn ~mode:`Soft ~fanout:(Harness.Pool.run pool) p)
      );
    ]
  in
  let scales = if quick then [ (100, 200) ] else [ (100, 200); (200, 400) ] in
  let reps = if quick then 1 else 3 in
  Harness.Pool.with_pool ~jobs:(Harness.Pool.default_jobs ()) @@ fun pool ->
  let algorithms = algorithms @ pool_algorithms pool in
  List.iter
    (fun (n_aps, n_users) ->
      let p =
        List.hd
          (Wlan_model.Scenario_gen.problems ~seed:99 ~n:1
             { Wlan_model.Scenario_gen.paper_default with n_aps; n_users })
      in
      List.iter
        (fun (name, solve) ->
          solve p (* warm *);
          let samples =
            List.init reps (fun _ ->
                let t0 = now_s () and c0 = Sys.time () in
                solve p;
                (now_s () -. t0, Sys.time () -. c0))
          in
          let sorted = List.sort compare samples in
          let wall, cpu = List.nth sorted (reps / 2) in
          let id = Fmt.str "alg:%s@%dx%d" name n_aps n_users in
          Fmt.pr "%-44s %8.1f ms@." id (wall *. 1e3);
          record_entry id ~wall ~cpu)
        algorithms)
    scales

(* City-scale rows (PR 6): 2000 APs × 40000 users across 20 districts,
   compiled sparse through the bucket grid — the dense rate matrix
   (2000 × 40000 floats, ~640 MB) is never allocated. Distributed rounds
   are capped so the snapshot tracks per-round cost at this scale; the
   sharded rows solve the geometric plan's districts on pool domains and
   are bit-identical to each other at any job count. *)
let city_timings ~quick () =
  let module C = Mcast_core in
  let rounds = if quick then 1 else 4 in
  let sc =
    Wlan_model.Scenario_gen.city ~seed:99 Wlan_model.Scenario_gen.city_default
  in
  let time id f =
    let t0 = now_s () and c0 = Sys.time () in
    f ();
    let wall = now_s () -. t0 and cpu = Sys.time () -. c0 in
    Fmt.pr "%-44s %8.1f ms@." id (wall *. 1e3);
    record_entry id ~wall ~cpu
  in
  let problem = ref None in
  time "city:compile-sparse@2000x40000" (fun () ->
      problem := Some (Wlan_model.Scenario.to_problem_sparse sc));
  let p = Option.get !problem in
  let n_aps, n_users = Wlan_model.Problem.dims p in
  time (Fmt.str "alg:mnu-distributed@%dx%d" n_aps n_users) (fun () ->
      ignore
        (C.Distributed.mnu ~max_rounds:rounds
           (Wlan_model.Problem.with_budget p 0.05)));
  time (Fmt.str "alg:bla-distributed@%dx%d" n_aps n_users) (fun () ->
      ignore (C.Distributed.bla ~max_rounds:rounds p));
  let plan =
    C.Shard.plan_geometric ~ap_pos:sc.Wlan_model.Scenario.ap_pos
      ~interaction_radius:
        (2. *. Wlan_model.Rate_table.range sc.Wlan_model.Scenario.rate_table)
      p
  in
  List.iter
    (fun jobs ->
      time
        (Fmt.str "alg:bla-distributed-sharded-j%d@%dx%d" jobs n_aps n_users)
        (fun () ->
          ignore
            (Harness.Pool.with_pool ~jobs (fun pool ->
                 C.Shard.solve ~plan ~fanout:(Harness.Pool.run pool)
                   ~max_rounds:rounds ~objective:C.Distributed.Min_load_vector
                   p))))
    (List.sort_uniq compare [ 1; Harness.Pool.default_jobs () ])

(* Serving-layer rows (PR 9): a generated churn script is expanded
   through the event adapter and streamed frame-by-frame through an
   in-memory serve Server (codec + batcher + Online settles, replay log
   accumulating as it would live). "serve:sustained-<n>ev@<scale>" is
   the wall time to ingest the whole stream (throughput printed as
   events/sec); "serve:p99-decision@<scale>" the 99th-percentile
   latency of the inputs that closed a batch — parse, settle, delta
   emission and logging included. The event count is fixed per scale so
   a --quick CI run stays comparable with the committed full snapshot. *)
let serve_timings ~quick () =
  let module S = Mcast_serve in
  let scales = if quick then [ (100, 200) ] else [ (100, 200); (200, 400) ] in
  let n_events = 5000 in
  List.iter
    (fun (n_aps, n_users) ->
      let p =
        List.hd
          (Wlan_model.Scenario_gen.problems ~seed:99 ~n:1
             { Wlan_model.Scenario_gen.paper_default with n_aps; n_users })
      in
      let rng = Random.State.make [| 99; 0x5e17e |] in
      let script =
        Wlan_model.Churn_script.random ~rng ~n_aps ~n_users
          {
            Wlan_model.Churn_script.default_gen with
            n_events;
            duration = 1000.;
          }
      in
      let inputs =
        match S.Adapter.inputs_of_script script with
        | Ok is -> is
        | Error e -> failwith (S.Adapter.error_message e)
      in
      let payloads =
        Array.of_list
          (S.Protocol.render_input
             (S.Protocol.Hello { version = S.Protocol.version })
          :: List.map S.Protocol.render_input inputs
          @ [ S.Protocol.render_input S.Protocol.Flush ])
      in
      let config =
        {
          S.Replay_log.objective = Mcast_core.Distributed.Min_total_load;
          obj_label = "mnu";
          mode = `Sequential;
          max_rounds = 200;
          queue_limit = 256;
          tiers = Wlan_model.Rate_table.rates Wlan_model.Rate_table.default;
          scenario_digest = None;
        }
      in
      let server = S.Server.create ~config p in
      let n = Array.length payloads in
      let lat = Array.make n 0. in
      let settled = Array.make n false in
      let t0 = now_s () and c0 = Sys.time () in
      for i = 0 to n - 1 do
        let s = now_s () in
        let outs = S.Server.handle_frame server payloads.(i) in
        lat.(i) <- now_s () -. s;
        settled.(i) <-
          List.exists
            (function S.Protocol.Settled _ -> true | _ -> false)
            outs
      done;
      let wall = now_s () -. t0 and cpu = Sys.time () -. c0 in
      let st = S.Server.stats server in
      let decisions = ref [] in
      Array.iteri
        (fun i s -> if s then decisions := lat.(i) :: !decisions)
        settled;
      let decisions = Array.of_list !decisions in
      Array.sort compare decisions;
      let p99 =
        if Array.length decisions = 0 then 0.
        else
          decisions.(min
                       (Array.length decisions - 1)
                       (int_of_float
                          (0.99 *. float_of_int (Array.length decisions))))
      in
      let sustained = Fmt.str "serve:sustained-%dev@%dx%d" n_events n_aps n_users in
      Fmt.pr "%-44s %8.1f ms (%.0f events/s, %d batches, %d deltas)@."
        sustained (wall *. 1e3)
        (float_of_int st.S.Server.events /. wall)
        st.S.Server.batches st.S.Server.emitted_deltas;
      record_entry sustained ~wall ~cpu;
      let p99_id = Fmt.str "serve:p99-decision@%dx%d" n_aps n_users in
      Fmt.pr "%-44s %8.3f ms@." p99_id (p99 *. 1e3);
      record_entry p99_id ~wall:p99)
    scales

(* PHY-model rows (PR 10): the same paper-scale deployment compiled
   under each pluggable link-rate model — "phy:compile-*" is the dense
   compile (for a path-loss model that is per-link received power, SNR
   and ladder walk on every AP-user pair; shadowed models also pay the
   per-link split-RNG draw), "phy:sparse-*" the bucket-grid sparse
   compile, and "phy:mla-*" one centralized MLA solve on the result. *)
let phy_timings ~quick () =
  let module W = Wlan_model in
  let reps = if quick then 1 else 3 in
  let models =
    [
      ("table1", None);
      ("friis", Some (W.Rate_model.friis ()));
      ("two-ray", Some (W.Rate_model.two_ray ()));
      ( "log-distance",
        Some
          (W.Rate_model.log_distance
             ~shadowing:{ W.Rate_model.sigma_db = 4.; seed = 7 }
             ()) );
    ]
  in
  let n_aps = 100 and n_users = 200 in
  List.iter
    (fun (name, rate_model) ->
      let sc =
        W.Scenario_gen.generate
          ~rng:(W.Scenario_gen.scenario_rng ~seed:99 0)
          { W.Scenario_gen.paper_default with n_aps; n_users; rate_model }
      in
      let time id f =
        f () (* warm *);
        let samples =
          List.init reps (fun _ ->
              let t0 = now_s () and c0 = Sys.time () in
              f ();
              (now_s () -. t0, Sys.time () -. c0))
        in
        let sorted = List.sort compare samples in
        let wall, cpu = List.nth sorted (reps / 2) in
        Fmt.pr "%-44s %8.1f ms@." id (wall *. 1e3);
        record_entry id ~wall ~cpu
      in
      time (Fmt.str "phy:compile-%s@%dx%d" name n_aps n_users) (fun () ->
          ignore (W.Scenario.to_problem sc));
      time (Fmt.str "phy:sparse-%s@%dx%d" name n_aps n_users) (fun () ->
          ignore (W.Scenario.to_problem_sparse sc));
      let p = W.Scenario.to_problem sc in
      time (Fmt.str "phy:mla-%s@%dx%d" name n_aps n_users) (fun () ->
          ignore (Mcast_core.Mla.run p)))
    models

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let experiments_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "Experiments to run (default: all). Known: table1 fig9 fig10 fig11 \
           fig12 headline ablate-rate ablate-bstar ablate-sched \
           ablate-bla-mode.")

let scenarios_arg =
  Arg.(
    value & opt int 40
    & info [ "scenarios" ] ~doc:"Random scenarios per point.")

let small_arg =
  Arg.(
    value & opt int 8
    & info [ "small-scenarios" ]
        ~doc:"Scenarios per point for fig12 (ILP-bound).")

let seed_arg = Arg.(value & opt int 2007 & info [ "seed" ] ~doc:"Master seed.")

let node_limit_arg =
  Arg.(
    value & opt int 4000
    & info [ "node-limit" ]
        ~doc:"Branch-and-bound node budget per exact solve.")

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains evaluating scenarios in parallel (default: the \
           recommended domain count). Figures are bit-identical for every \
           value of $(docv).")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Fast pass: 5 scenarios, 2 small.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each figure as DIR/<id>.csv.")

let bechamel_arg =
  Arg.(
    value & flag
    & info [ "bechamel" ] ~doc:"Also run Bechamel micro-benchmarks.")

let bench_json_arg =
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_PR9.json") (some string) None
    & info [ "bench-json" ] ~docv:"FILE"
        ~doc:
          "Write a performance snapshot (experiment wall times, \
           per-algorithm solve times, serve sustained/latency rows, \
           bechamel estimates when --bechamel is also given) as JSON to \
           $(docv) (default: BENCH_PR9.json).")

let bench_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench-baseline" ] ~docv:"FILE"
        ~doc:
          "A previous --bench-json snapshot to embed as the baseline; \
           speedup ratios are derived for entries present in both.")

let bench_label_arg =
  Arg.(
    value & opt string "PR9"
    & info [ "bench-label" ] ~docv:"LABEL"
        ~doc:"Label stored in the --bench-json snapshot.")

let bench_compare_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench-compare" ] ~docv:"FILE"
        ~doc:
          "Compare this run's timings against the committed snapshot \
           $(docv) (a previous --bench-json file) and exit non-zero if \
           any entry present in both regressed past --bench-threshold. \
           Implies timing the per-algorithm and city rows even without \
           --bench-json.")

let bench_threshold_arg =
  Arg.(
    value & opt float 0.5
    & info [ "bench-threshold" ] ~docv:"FRAC"
        ~doc:
          "Allowed wall-time regression for --bench-compare, as a \
           fraction of the baseline (default 0.5: fail past 1.5x). \
           Generous by default so single-rep --quick runs on loaded CI \
           machines do not flap.")

let bench_min_wall_arg =
  Arg.(
    value & opt float 0.05
    & info [ "bench-min-wall" ] ~docv:"SECONDS"
        ~doc:
          "Ignore --bench-compare rows whose baseline wall time is \
           below $(docv) (default 0.05). Micro rows (a few hundred µs) \
           regress by whole multiples from a single cache miss; only \
           rows above the noise floor can fail the run.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable the deterministic event-counter plane (DESIGN.md §4.9) \
           around the run and print the counter table at exit. Counters \
           never feed the --bench-json snapshot; wall times never feed \
           the counters.")

let write_bench_json ~path ~label ~baseline_path ~jobs ~quick ~seed =
  let baseline =
    match baseline_path with
    | None -> None
    | Some f ->
        let ic = open_in f in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        let parsed = Harness.Bench_json.parse s in
        if parsed = None then
          Fmt.epr "warning: %s is not a bench-json snapshot, ignoring@." f;
        parsed
  in
  let snapshot =
    {
      Harness.Bench_json.label;
      jobs;
      quick;
      seed;
      entries = List.rev !bench_entries;
    }
  in
  let oc = open_out path in
  output_string oc (Harness.Bench_json.render ?baseline snapshot);
  close_out oc;
  Fmt.pr "[bench-json: %s]@." path;
  match baseline with
  | None -> ()
  | Some b ->
      List.iter
        (fun (name, ratio) -> Fmt.pr "%-44s %6.2fx vs %s@." name ratio b.label)
        (Harness.Bench_json.speedups ~baseline:b.entries ~current:snapshot)

let main names scenarios small seed node_limit jobs quick csv bech bench_json
    bench_baseline bench_label bench_compare bench_threshold bench_min_wall
    profile =
  csv_dir := csv;
  let jobs = Int.max 1 jobs in
  if profile then begin
    Wlan_obs.Counters.reset ();
    Wlan_obs.Counters.set_enabled true
  end;
  let cfg =
    {
      Harness.Experiments.scenarios = (if quick then 5 else scenarios);
      small_scenarios = (if quick then 2 else small);
      seed;
      ilp_node_limit = node_limit;
      jobs;
    }
  in
  let names =
    match names with
    | [] ->
        [
          "table1"; "fig9"; "fig10"; "fig11"; "fig12"; "headline";
          "ablate-rate"; "ablate-bstar"; "ablate-sched"; "ablate-bla-mode";
          "ablate-mla-alg"; "ablate-phy"; "ext-popularity"; "ext-interference";
          "ext-dual"; "ext-loss"; "ext-mobility"; "ext-power"; "ext-standards";
        ]
    | ns -> ns
  in
  Fmt.pr "wlan-mcast benchmark harness: %d scenarios/point, seed %d, %d jobs@."
    cfg.Harness.Experiments.scenarios cfg.Harness.Experiments.seed jobs;
  let t0 = now_s () in
  let c0 = Sys.time () in
  List.iter (run_experiment cfg) names;
  if bech then begin
    bechamel_algorithms ();
    bechamel_pool ~jobs ()
  end;
  if bench_json <> None || bench_compare <> None then begin
    algorithm_timings ~quick ();
    city_timings ~quick ();
    serve_timings ~quick ();
    phy_timings ~quick ()
  end;
  (* read the comparison snapshot before --bench-json possibly
     overwrites the same path *)
  let compare_base =
    match bench_compare with
    | None -> None
    | Some f ->
        let ic = open_in f in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (match Harness.Bench_json.parse s with
        | Some b -> Some b
        | None ->
            Fmt.epr "bench-compare: %s is not a bench-json snapshot@." f;
            exit 2)
  in
  (match bench_json with
  | None -> ()
  | Some path ->
      write_bench_json ~path ~label:bench_label ~baseline_path:bench_baseline
        ~jobs ~quick ~seed);
  let regressed =
    match compare_base with
    | None -> false
    | Some base -> (
        if base.Harness.Bench_json.quick <> quick then
          Fmt.epr
            "bench-compare note: baseline %s was %s run, this is %s — \
             experiment rows are not comparable; only same-scale alg: rows \
             can regress@."
            base.Harness.Bench_json.label
            (if base.Harness.Bench_json.quick then "a --quick" else "a full")
            (if quick then "--quick" else "full");
        match
          Harness.Bench_json.regressions ~min_wall:bench_min_wall
            ~threshold:bench_threshold
            ~baseline:base.Harness.Bench_json.entries
            ~current:(List.rev !bench_entries) ()
        with
        | [] ->
            Fmt.pr
              "[bench-compare: ok, no entry over %.3fs slower than %.2fx \
               %s]@."
              bench_min_wall (1. +. bench_threshold)
              base.Harness.Bench_json.label;
            false
        | regs ->
            List.iter
              (fun (name, ratio) ->
                Fmt.epr "bench-compare REGRESSION %-44s %6.2fx vs %s@." name
                  ratio base.Harness.Bench_json.label)
              regs;
            true)
  in
  if profile then begin
    Wlan_obs.Counters.set_enabled false;
    let report =
      Wlan_obs.Report.make ~label:"bench" ~seed
        ~scenarios:cfg.Harness.Experiments.scenarios ~targets:names
    in
    Fmt.pr "@.%a@." Wlan_obs.Report.pp_text report
  end;
  let wall = now_s () -. t0 in
  Fmt.pr "@.total wall time: %.1fs (cpu %.1fs, %.2fx, jobs=%d)@." wall
    (Sys.time () -. c0)
    (if wall > 0. then (Sys.time () -. c0) /. wall else 1.)
    jobs;
  if regressed then exit 1

let cmd =
  Cmd.v
    (Cmd.info "wlan-mcast-bench"
       ~doc:
         "Reproduce the tables and figures of the ICDCS'07 multicast \
          association-control paper")
    Term.(
      const main $ experiments_arg $ scenarios_arg $ small_arg $ seed_arg
      $ node_limit_arg $ jobs_arg $ quick_arg $ csv_arg $ bechamel_arg
      $ bench_json_arg $ bench_baseline_arg $ bench_label_arg
      $ bench_compare_arg $ bench_threshold_arg $ bench_min_wall_arg
      $ profile_arg)

let () = exit (Cmd.eval cmd)
